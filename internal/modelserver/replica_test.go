package modelserver

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"env2vec/internal/obs"
)

func TestVersionVectorEndpoint(t *testing.T) {
	reg, err := OpenRegistry(WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("a", demoSnapshot(1), 1); err != nil {
		t.Fatal(err)
	}
	_, _ = reg.Publish("a", demoSnapshot(2), 2)
	_, _ = reg.Publish("b", demoSnapshot(3), 3)
	srv := httptest.NewServer(&Handler{Registry: reg})
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/versions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vec VersionVector
	if err := json.NewDecoder(resp.Body).Decode(&vec); err != nil {
		t.Fatal(err)
	}
	if len(vec.Shards) != 4 {
		t.Fatalf("vector has %d shards, want 4", len(vec.Shards))
	}
	models := vec.Models()
	if models["a"] != 2 || models["b"] != 1 {
		t.Fatalf("vector models wrong: %v", models)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("vector has no ETag")
	}

	// Unchanged vector → 304 on If-None-Match.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/versions", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("unchanged vector status %d, want 304", resp2.StatusCode)
	}

	// A publish invalidates the tag.
	_, _ = reg.Publish("b", demoSnapshot(4), 4)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("changed vector status %d, want 200", resp3.StatusCode)
	}

	// Wrong method on /versions.
	resp4, err := http.Post(srv.URL+"/versions", "text/plain", http.NoBody)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /versions status %d", resp4.StatusCode)
	}
}

func TestReplicaSyncPullsAndShortCircuits(t *testing.T) {
	primary := NewRegistry()
	srv := httptest.NewServer(&Handler{Registry: primary, Now: func() int64 { return 42 }})
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	if _, err := client.Publish("a", demoSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	_, _ = client.Publish("a", demoSnapshot(2))
	_, _ = client.Publish("b", demoSnapshot(3))

	oreg := obs.NewRegistry()
	var syncedPulls []int
	local := NewRegistry()
	rp := (&Replica{
		Client:   client,
		Registry: local,
		OnSync:   func(pulled int) { syncedPulls = append(syncedPulls, pulled) },
	}).Instrument(oreg)

	pulled, err := rp.Sync()
	if err != nil || pulled != 3 {
		t.Fatalf("first sync: %d %v", pulled, err)
	}
	// Replicated versions keep their numbers, bytes, and created stamps.
	for _, want := range []struct {
		name string
		num  int
		seed int64
	}{{"a", 1, 1}, {"a", 2, 2}, {"b", 1, 3}} {
		v, err := local.Get(want.name, want.num)
		if err != nil {
			t.Fatalf("replica missing %s v%d: %v", want.name, want.num, err)
		}
		data, _ := demoSnapshot(want.seed).Bytes()
		if !bytes.Equal(v.Data, data) || v.Created != 42 {
			t.Fatalf("replica mangled %s v%d", want.name, want.num)
		}
	}

	// Second sync is a header exchange only.
	if pulled, err := rp.Sync(); err != nil || pulled != 0 {
		t.Fatalf("idle sync: %d %v", pulled, err)
	}
	if rp.m.notModified.Value() != 1 {
		t.Fatalf("idle sync did not take the 304 path (%d)", rp.m.notModified.Value())
	}

	// New versions land incrementally, not as a full re-pull.
	_, _ = client.Publish("a", demoSnapshot(4))
	if pulled, err := rp.Sync(); err != nil || pulled != 1 {
		t.Fatalf("incremental sync: %d %v", pulled, err)
	}
	if rp.m.pulls.Value() != 4 {
		t.Fatalf("pulls counter %d, want 4", rp.m.pulls.Value())
	}
	if len(syncedPulls) != 3 || syncedPulls[0] != 3 || syncedPulls[1] != 0 || syncedPulls[2] != 1 {
		t.Fatalf("OnSync saw %v", syncedPulls)
	}

	// A replica can itself be a primary: chain a second tier off the first.
	tier2 := NewRegistry()
	srv2 := httptest.NewServer(&Handler{Registry: local})
	defer srv2.Close()
	rp2 := &Replica{Client: &Client{BaseURL: srv2.URL}, Registry: tier2}
	if pulled, err := rp2.Sync(); err != nil || pulled != 4 {
		t.Fatalf("tier-2 sync: %d %v", pulled, err)
	}
}

func TestReplicaSurfacesErrors(t *testing.T) {
	rp := &Replica{}
	if _, err := rp.Sync(); err == nil {
		t.Fatal("nil client/registry accepted")
	}
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	rp = &Replica{Client: &Client{BaseURL: srv.URL}, Registry: NewRegistry()}
	if _, err := rp.Sync(); err == nil {
		t.Fatal("404 vector accepted")
	}
}

// TestReadOnlyHandlerRefusesPublish pins the replica's HTTP surface: a
// follower that accepted a local publish would take a version number the
// primary later assigns to different bytes, so POST must fail loudly
// while every read route keeps working.
func TestReadOnlyHandlerRefusesPublish(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Publish("env2vec", demoSnapshot(1), 1); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(&Handler{Registry: reg, ReadOnly: true})
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/models/env2vec", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("publish to read-only handler: %d %q", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "publish to the primary") {
		t.Fatalf("unhelpful refusal: %q", body)
	}
	if v, err := reg.Latest("env2vec"); err != nil || v.Number != 1 {
		t.Fatalf("refused publish mutated the registry: %+v %v", v, err)
	}

	c := &Client{BaseURL: srv.URL}
	if _, ver, err := c.FetchLatest("env2vec"); err != nil || ver != 1 {
		t.Fatalf("read-only fetch: v%d %v", ver, err)
	}
	if vec, _, _, err := c.FetchVersionVector(""); err != nil || vec.Models()["env2vec"] != 1 {
		t.Fatalf("read-only vector: %v %v", vec, err)
	}
}
