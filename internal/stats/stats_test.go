package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if !almost(Variance(xs), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if !almost(StdDev(xs), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatalf("degenerate inputs mishandled")
	}
}

func TestFitGaussianAndZscore(t *testing.T) {
	g := FitGaussian([]float64{1, 2, 3})
	if g.Mu != 2 || !almost(g.Sigma, 1, 1e-12) {
		t.Fatalf("fit wrong: %+v", g)
	}
	if !almost(g.Zscore(4), 2, 1e-12) {
		t.Fatalf("Zscore wrong")
	}
	empty := FitGaussian(nil)
	if empty.Mu != 0 || empty.Sigma != 1 {
		t.Fatalf("empty fit should be standard normal: %+v", empty)
	}
	deg := Gaussian{Mu: 5, Sigma: 0}
	if !math.IsInf(deg.Zscore(6), 1) || !math.IsInf(deg.Zscore(4), -1) || deg.Zscore(5) != 0 {
		t.Fatalf("degenerate zscore wrong")
	}
}

func TestGaussianCDF(t *testing.T) {
	g := Gaussian{Mu: 0, Sigma: 1}
	if !almost(g.CDF(0), 0.5, 1e-12) {
		t.Fatalf("CDF(0) = %v", g.CDF(0))
	}
	if !almost(g.CDF(1.96), 0.975, 1e-3) {
		t.Fatalf("CDF(1.96) = %v", g.CDF(1.96))
	}
	deg := Gaussian{Mu: 1, Sigma: 0}
	if deg.CDF(0.5) != 0 || deg.CDF(1.5) != 1 {
		t.Fatalf("degenerate CDF wrong")
	}
}

func TestGaussianTailProb(t *testing.T) {
	g := Gaussian{Mu: 0, Sigma: 1}
	if !almost(g.TailProb(1.96), 0.05, 2e-3) {
		t.Fatalf("TailProb(1.96) = %v", g.TailProb(1.96))
	}
	deg := Gaussian{Mu: 0, Sigma: 0}
	if deg.TailProb(1) != 0 {
		t.Fatalf("degenerate tail should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatalf("extremes wrong")
	}
	if !almost(Quantile(xs, 0.5), 2.5, 1e-12) {
		t.Fatalf("median = %v", Quantile(xs, 0.5))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatalf("empty quantile should be NaN")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := map[float64]float64{0.5: 0, 1: 0.25, 2: 0.75, 2.5: 0.75, 3: 1, 9: 1}
	for x, want := range cases {
		if got := e.At(x); !almost(got, want, 1e-12) {
			t.Fatalf("ECDF(%v) = %v, want %v", x, got, want)
		}
	}
	xs, fs := e.Points()
	if len(xs) != 4 || fs[3] != 1 {
		t.Fatalf("Points wrong: %v %v", xs, fs)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] < fs[i-1] || xs[i] < xs[i-1] {
			t.Fatalf("ECDF points must be monotone")
		}
	}
}

// Property: ECDF is monotone nondecreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		e := NewECDF(xs)
		prev := -1.0
		for q := -30.0; q <= 30; q += 1.5 {
			v := e.At(q)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxplot(t *testing.T) {
	b := Boxplot([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 || b.Mean != 3 {
		t.Fatalf("boxplot wrong: %v", b)
	}
	if b.String() == "" {
		t.Fatalf("String empty")
	}
}

func TestPairedTTestIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	tstat, p, err := PairedTTest(a, a)
	if err != nil || tstat != 0 || p != 1 {
		t.Fatalf("identical samples: t=%v p=%v err=%v", tstat, p, err)
	}
}

func TestPairedTTestClearDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + 2 + rng.NormFloat64()*0.1
	}
	_, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("clear difference should have tiny p, got %v", p)
	}
}

func TestPairedTTestNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 50
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + rng.NormFloat64()*0.01
	}
	_, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("no systematic difference should not be ultra-significant, p=%v", p)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatalf("length mismatch should error")
	}
	if _, _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Fatalf("n<2 should error")
	}
}

func TestPairedTTestConstantShift(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 3, 4}
	tstat, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tstat, -1) || p != 0 {
		t.Fatalf("constant shift: t=%v p=%v", tstat, p)
	}
}

func TestStudentTAgainstKnownValues(t *testing.T) {
	// Two-sided p for t=2.045, df=29 is ~0.05.
	p := 2 * studentTSF(2.045, 29)
	if !almost(p, 0.05, 0.003) {
		t.Fatalf("studentTSF(2.045,29): p=%v", p)
	}
	// t=12.706, df=1 → p≈0.05.
	p = 2 * studentTSF(12.706, 1)
	if !almost(p, 0.05, 0.003) {
		t.Fatalf("studentTSF(12.706,1): p=%v", p)
	}
}
