// Package stats provides the statistical primitives used across the
// evaluation harness: descriptive statistics, Gaussian error modelling for
// anomaly thresholds, empirical CDFs (Figure 4), boxplot summaries
// (Figure 1), principal component analysis for embedding visualization
// (Figure 6), and the paired t-test used to compare model means (§4.1.2).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Gaussian is a normal distribution N(Mu, Sigma²).
type Gaussian struct {
	Mu, Sigma float64
}

// FitGaussian estimates a Gaussian from samples. A zero-sample fit returns
// the standard normal; a single sample gives Sigma 0.
func FitGaussian(xs []float64) Gaussian {
	if len(xs) == 0 {
		return Gaussian{0, 1}
	}
	return Gaussian{Mu: Mean(xs), Sigma: StdDev(xs)}
}

// Zscore returns (x−μ)/σ; with σ=0 it returns ±Inf (or 0 at the mean),
// which makes degenerate error distributions behave as hard thresholds.
func (g Gaussian) Zscore(x float64) float64 {
	if g.Sigma == 0 {
		switch {
		case x > g.Mu:
			return math.Inf(1)
		case x < g.Mu:
			return math.Inf(-1)
		}
		return 0
	}
	return (x - g.Mu) / g.Sigma
}

// CDF returns P(X ≤ x) for the Gaussian.
func (g Gaussian) CDF(x float64) float64 {
	if g.Sigma == 0 {
		if x < g.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-g.Mu)/(g.Sigma*math.Sqrt2)))
}

// TailProb returns the two-sided tail probability P(|X−μ| ≥ |x−μ|).
func (g Gaussian) TailProb(x float64) float64 {
	z := math.Abs(g.Zscore(x))
	if math.IsInf(z, 1) {
		return 0
	}
	return math.Erfc(z / math.Sqrt2)
}

// Quantile returns the q-th empirical quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns the fraction of samples ≤ x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Points returns the step points (x_i, F(x_i)) of the ECDF, suitable for
// plotting a CDF curve like Figure 4.
func (e *ECDF) Points() (xs, fs []float64) {
	n := len(e.sorted)
	xs = append([]float64(nil), e.sorted...)
	fs = make([]float64, n)
	for i := range fs {
		fs[i] = float64(i+1) / float64(n)
	}
	return xs, fs
}

// BoxStats is the five-number summary plus mean used for Figure 1's residual
// boxplots.
type BoxStats struct {
	Min, Q1, Median, Q3, Max, Mean float64
}

// Boxplot computes a BoxStats summary of xs.
func Boxplot(xs []float64) BoxStats {
	return BoxStats{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
		Mean:   Mean(xs),
	}
}

// String renders the summary compactly.
func (b BoxStats) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
}

// PairedTTest performs a two-sided paired t-test on equal-length samples and
// returns the t statistic and an approximate p-value. The p-value uses the
// normal approximation for df ≥ 30 and a Student-t series otherwise, which
// is adequate for the significance-0.05 comparisons in §4.1.2.
func PairedTTest(a, b []float64) (tstat, pvalue float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("stats: paired t-test needs equal lengths, got %d and %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, 0, fmt.Errorf("stats: paired t-test needs at least 2 pairs, got %d", n)
	}
	diff := make([]float64, n)
	for i := range a {
		diff[i] = a[i] - b[i]
	}
	md := Mean(diff)
	sd := StdDev(diff)
	if sd == 0 {
		if md == 0 {
			return 0, 1, nil
		}
		return math.Inf(sign(md)), 0, nil
	}
	tstat = md / (sd / math.Sqrt(float64(n)))
	pvalue = 2 * studentTSF(math.Abs(tstat), float64(n-1))
	return tstat, pvalue, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTSF returns P(T > t) for Student's t with df degrees of freedom,
// via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	// Lentz's continued fraction.
	const eps = 1e-12
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			numerator = -(a + float64(m)) * (a + b + float64(m)) * x / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < 1e-30 {
			d = 1e-30
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < 1e-30 {
			c = 1e-30
		}
		f *= c * d
		if math.Abs(1-c*d) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
