package stats

import (
	"fmt"
	"math"
	"sort"

	"env2vec/internal/tensor"
)

// PCA holds a fitted principal component analysis: the data mean and the
// top-k principal axes. It is used to project learned environment
// embeddings into 2-D for Figure 6.
type PCA struct {
	Mean       []float64      // feature means
	Components *tensor.Matrix // k×d, rows are unit-norm principal axes
	Explained  []float64      // fraction of variance explained per component
}

// FitPCA computes the top-k principal components of x (rows are samples)
// using a dense Jacobi eigendecomposition of the covariance matrix.
func FitPCA(x *tensor.Matrix, k int) (*PCA, error) {
	n, d := x.Rows, x.Cols
	if n < 2 {
		return nil, fmt.Errorf("stats: PCA needs at least 2 samples, got %d", n)
	}
	if k <= 0 || k > d {
		return nil, fmt.Errorf("stats: PCA components k=%d out of range (1..%d)", k, d)
	}
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	// Covariance matrix (d×d).
	cov := tensor.New(d, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for a := 0; a < d; a++ {
			da := row[a] - mean[a]
			if da == 0 {
				continue
			}
			crow := cov.Row(a)
			for b := 0; b < d; b++ {
				crow[b] += da * (row[b] - mean[b])
			}
		}
	}
	cov.ScaleInPlace(1 / float64(n-1))

	vals, vecs := jacobiEigen(cov)
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	total := 0.0
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	comp := tensor.New(k, d)
	explained := make([]float64, k)
	for r := 0; r < k; r++ {
		e := idx[r]
		for j := 0; j < d; j++ {
			comp.Set(r, j, vecs.At(j, e)) // eigenvectors are columns of vecs
		}
		if total > 0 {
			explained[r] = math.Max(vals[e], 0) / total
		}
	}
	return &PCA{Mean: mean, Components: comp, Explained: explained}, nil
}

// Transform projects x (rows are samples with the fitted dimensionality)
// onto the principal axes, returning an n×k matrix.
func (p *PCA) Transform(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != len(p.Mean) {
		panic(fmt.Sprintf("stats: PCA.Transform dim %d, fitted %d", x.Cols, len(p.Mean)))
	}
	k := p.Components.Rows
	out := tensor.New(x.Rows, k)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for r := 0; r < k; r++ {
			axis := p.Components.Row(r)
			s := 0.0
			for j, v := range row {
				s += (v - p.Mean[j]) * axis[j]
			}
			out.Set(i, r, s)
		}
	}
	return out
}

// jacobiEigen diagonalizes a symmetric matrix via cyclic Jacobi rotations,
// returning eigenvalues and a matrix whose columns are eigenvectors.
func jacobiEigen(a *tensor.Matrix) ([]float64, *tensor.Matrix) {
	n := a.Rows
	m := a.Clone()
	v := tensor.New(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	return vals, v
}
