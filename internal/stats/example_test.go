package stats_test

import (
	"fmt"

	"env2vec/internal/stats"
)

func ExampleFitGaussian() {
	errors := []float64{-0.4, 0.1, 0.3, -0.1, 0.1}
	g := stats.FitGaussian(errors)
	fmt.Printf("mu=%.1f sigma=%.2f z(0.55)=%.1f\n", g.Mu+0, g.Sigma, g.Zscore(0.55))
	// Output: mu=-0.0 sigma=0.26 z(0.55)=2.1
}

func ExampleNewECDF() {
	maes := []float64{1.0, 2.0, 2.0, 4.0}
	cdf := stats.NewECDF(maes)
	fmt.Printf("F(1.5)=%.2f F(2)=%.2f F(5)=%.2f\n", cdf.At(1.5), cdf.At(2), cdf.At(5))
	// Output: F(1.5)=0.25 F(2)=0.75 F(5)=1.00
}

func ExampleBoxplot() {
	residuals := []float64{0.5, 1.0, 1.5, 2.0, 9.5}
	fmt.Println(stats.Boxplot(residuals))
	// Output: min=0.500 q1=1.000 med=1.500 q3=2.000 max=9.500 mean=2.900
}

func ExamplePairedTTest() {
	env2vec := []float64{4.5, 4.7, 4.6, 4.4, 4.8}
	rfnn := []float64{4.9, 5.1, 4.8, 4.9, 5.2}
	tstat, p, _ := stats.PairedTTest(env2vec, rfnn)
	fmt.Printf("t=%.1f significant=%v\n", tstat, p < 0.05)
	// Output: t=-7.8 significant=true
}
