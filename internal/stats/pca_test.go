package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"env2vec/internal/tensor"
)

func TestPCARecoversDominantDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Data spread mostly along (1,1)/√2, small noise orthogonal.
	n := 400
	x := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		major := rng.NormFloat64() * 5
		minor := rng.NormFloat64() * 0.3
		x.Set(i, 0, major/math.Sqrt2-minor/math.Sqrt2+10)
		x.Set(i, 1, major/math.Sqrt2+minor/math.Sqrt2-4)
	}
	p, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	axis := p.Components.Row(0)
	// First axis should be ±(1,1)/√2.
	if math.Abs(math.Abs(axis[0])-1/math.Sqrt2) > 0.02 || math.Abs(math.Abs(axis[1])-1/math.Sqrt2) > 0.02 {
		t.Fatalf("dominant axis wrong: %v", axis)
	}
	if p.Explained[0] < 0.95 {
		t.Fatalf("first component should explain most variance: %v", p.Explained)
	}
	if math.Abs(p.Mean[0]-10) > 0.5 || math.Abs(p.Mean[1]+4) > 0.5 {
		t.Fatalf("mean wrong: %v", p.Mean)
	}
}

func TestPCATransformCentersData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(50, 3)
	x.RandNormal(rng, 2)
	p, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj := p.Transform(x)
	if proj.Rows != 50 || proj.Cols != 2 {
		t.Fatalf("bad projection shape")
	}
	// Projections of centered data have (near) zero mean.
	for c := 0; c < 2; c++ {
		s := 0.0
		for i := 0; i < proj.Rows; i++ {
			s += proj.At(i, c)
		}
		if math.Abs(s/50) > 1e-10 {
			t.Fatalf("projection not centered: %v", s/50)
		}
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 10+rng.Intn(30), 2+rng.Intn(5)
		x := tensor.New(n, d)
		x.RandNormal(rng, 1)
		k := 1 + rng.Intn(d)
		p, err := FitPCA(x, k)
		if err != nil {
			return false
		}
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				dot := 0.0
				for j := 0; j < d; j++ {
					dot += p.Components.At(a, j) * p.Components.At(b, j)
				}
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(dot-want) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPCAExplainedVarianceSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(100, 4)
	x.RandNormal(rng, 1)
	p, err := FitPCA(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, e := range p.Explained {
		if e < 0 || e > 1 {
			t.Fatalf("explained fraction out of range: %v", p.Explained)
		}
		sum += e
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("explained fractions should sum to 1 with k=d: %v", sum)
	}
	// Descending order.
	for i := 1; i < len(p.Explained); i++ {
		if p.Explained[i] > p.Explained[i-1]+1e-12 {
			t.Fatalf("explained not sorted: %v", p.Explained)
		}
	}
}

func TestPCAErrors(t *testing.T) {
	x := tensor.New(1, 3)
	if _, err := FitPCA(x, 1); err == nil {
		t.Fatalf("n<2 should error")
	}
	y := tensor.New(5, 3)
	if _, err := FitPCA(y, 0); err == nil {
		t.Fatalf("k=0 should error")
	}
	if _, err := FitPCA(y, 4); err == nil {
		t.Fatalf("k>d should error")
	}
}

func TestPCATransformDimPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(10, 3)
	x.RandNormal(rng, 1)
	p, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for wrong input dim")
		}
	}()
	p.Transform(tensor.New(2, 5))
}

func TestJacobiEigenOnKnownMatrix(t *testing.T) {
	// Symmetric matrix [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := tensor.FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := jacobiEigen(m)
	got := append([]float64(nil), vals...)
	if got[0] > got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-1) > 1e-9 || math.Abs(got[1]-3) > 1e-9 {
		t.Fatalf("eigenvalues wrong: %v", vals)
	}
	// Verify A·v = λ·v for each column.
	for c := 0; c < 2; c++ {
		v0, v1 := vecs.At(0, c), vecs.At(1, c)
		av0 := 2*v0 + v1
		av1 := v0 + 2*v1
		l := vals[c]
		if math.Abs(av0-l*v0) > 1e-9 || math.Abs(av1-l*v1) > 1e-9 {
			t.Fatalf("eigenpair %d fails A·v=λ·v", c)
		}
	}
}
