// Package core implements the Env2Vec deep-learning architecture — the
// paper's primary contribution (§3). A single generic model predicts VNF
// resource utilization from three input families:
//
//   - contextual features (workload + performance metrics), through a
//     one-hidden-layer FNN producing v_fs;
//   - the sliding window of recent resource-usage values, through a GRU
//     producing v_ts;
//   - environment metadata <Testbed, SUT, Testcase, Build>, through four
//     embedding lookup tables (dimension 10 each, with a learned <unk>
//     row) whose outputs concatenate into the environment embedding C.
//
// v_s = [v_ts, v_fs] passes through a dense layer to v_d (the same width
// as C), and the prediction is the sum of the Hadamard product:
// y′ = Σ (v_d ⊙ C)  (Equation 2). Training minimizes MSE with Adam,
// dropout, and early stopping, exactly as in Appendix A.1.
//
// Because C is composed per-feature, a previously unseen environment tuple
// can still be scored by recombining component embeddings learned from
// other environments — the §4.3 capability that per-chain models lack.
package core

import (
	"fmt"
	"math/rand"

	"env2vec/internal/autodiff"
	"env2vec/internal/envmeta"
	"env2vec/internal/infer"
	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// Head selects how the dense features v_d and the environment embedding C
// combine into a prediction. §3.2 describes all three: the Hadamard sum of
// Equation 2 (the paper's choice), a bilinear form with an extra matrix R,
// and an MLP over the concatenation — the latter two "require more
// parameters to learn but yield similar results".
type Head int

// Prediction heads.
const (
	HeadHadamard Head = iota // y′ = Σ (v_d ⊙ C)            (Equation 2)
	HeadBilinear             // y′ = v_d · R · C
	HeadMLP                  // y′ = MLP([v_d, C])
)

// String implements fmt.Stringer.
func (h Head) String() string {
	switch h {
	case HeadHadamard:
		return "hadamard"
	case HeadBilinear:
		return "bilinear"
	case HeadMLP:
		return "mlp"
	}
	return fmt.Sprintf("Head(%d)", int(h))
}

// Config sizes the Env2Vec network.
type Config struct {
	In        int     // contextual-feature dimensionality
	Hidden    int     // FNN hidden units (v_fs width)
	GRUHidden int     // GRU state width (v_ts width)
	EmbedDim  int     // per-feature embedding dimension (paper: 10)
	Window    int     // RU-history length n
	Dropout   float64 // dropout rate on the FNN hidden layer
	UnkProb   float64 // train-time probability of replacing an env id with <unk>
	Seed      int64
	// Head selects the prediction head; the zero value is the paper's
	// Hadamard sum (Equation 2).
	Head Head
	// Attention enables the §6 future-work extension: an additive
	// attention mixture over all GRU hidden states instead of the final
	// state only.
	Attention bool
}

// DefaultConfig mirrors the paper's architecture choices for a feature
// dimensionality of in.
func DefaultConfig(in int) Config {
	return Config{
		In:        in,
		Hidden:    64,
		GRUHidden: 32,
		EmbedDim:  10,
		Window:    4,
		Dropout:   0.1,
		UnkProb:   0.02,
		Seed:      1,
	}
}

// Model is the assembled Env2Vec network. It implements nn.Model.
type Model struct {
	cfg        Config
	fnn        *nn.MLP
	gru        *nn.GRU
	dense      *nn.Dense
	embeddings [envmeta.NumFeatures]*nn.Embedding

	attention *nn.Attention // non-nil when cfg.Attention
	bilinear  *nn.Param     // R matrix when cfg.Head == HeadBilinear
	headMLP   *nn.MLP       // when cfg.Head == HeadMLP

	// pred is the tape-free fused forward path used by Predict. It reads
	// the live layer weights on every call, so it needs no refresh after
	// optimizer steps or snapshot restores.
	pred *infer.Predictor
}

// New builds the model. Vocabulary sizes are taken from the schema, which
// must already have observed the training environments.
func New(cfg Config, schema *envmeta.Schema) *Model {
	if cfg.In <= 0 || cfg.Hidden <= 0 || cfg.GRUHidden <= 0 || cfg.EmbedDim <= 0 || cfg.Window <= 0 {
		panic(fmt.Sprintf("core: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		cfg: cfg,
		fnn: nn.NewMLP("env2vec.fnn", cfg.In, cfg.Hidden, nn.Sigmoid, cfg.Dropout, rng),
		gru: nn.NewGRU("env2vec.gru", 1, cfg.GRUHidden, rng),
	}
	cdim := envmeta.NumFeatures * cfg.EmbedDim
	m.dense = nn.NewDense("env2vec.dense", cfg.Hidden+cfg.GRUHidden, cdim, nn.ReLU, rng)
	sizes := schema.Sizes()
	for k := 0; k < envmeta.NumFeatures; k++ {
		name := "env2vec.embed." + envmeta.FeatureNames()[k]
		m.embeddings[k] = nn.NewEmbedding(name, sizes[k], cfg.EmbedDim, rng)
	}
	if cfg.Attention {
		m.attention = nn.NewAttention("env2vec.attn", cfg.GRUHidden, cfg.GRUHidden, rng)
	}
	switch cfg.Head {
	case HeadHadamard:
	case HeadBilinear:
		m.bilinear = nn.NewParam("env2vec.head.R", cdim, cdim)
		// Initialize near the identity so the bilinear head starts as the
		// Hadamard head and learns the interaction structure from there.
		for i := 0; i < cdim; i++ {
			m.bilinear.Value.Set(i, i, 1)
		}
		noise := tensor.New(cdim, cdim)
		noise.RandUniform(rng, 0.01)
		m.bilinear.Value.AddInPlace(noise)
	case HeadMLP:
		m.headMLP = nn.NewMLP("env2vec.head", 2*cdim, cdim, nn.ReLU, 0, rng)
	default:
		panic(fmt.Sprintf("core: unknown prediction head %d", int(cfg.Head)))
	}
	m.pred = infer.NewPredictor(m.network())
	return m
}

// network maps the model's layers into the tape-free inference path's view
// of the architecture.
func (m *Model) network() infer.Network {
	net := infer.Network{
		FNNHidden:  m.fnn.Hidden,
		GRU:        m.gru,
		Dense:      m.dense,
		Embeddings: m.embeddings[:],
		Attention:  m.attention,
	}
	switch m.cfg.Head {
	case HeadBilinear:
		net.Head = infer.HeadBilinear
		net.Bilinear = m.bilinear.Value
	case HeadMLP:
		net.Head = infer.HeadMLP
		net.HeadMLP = m.headMLP
	default:
		net.Head = infer.HeadHadamard
	}
	return net
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// forward builds the prediction graph for a batch.
func (m *Model) forward(t *autodiff.Tape, b *nn.Batch, train bool, rng *rand.Rand) *autodiff.Node {
	if b.Window == nil {
		panic("core: Env2Vec requires an RU-history window in the batch")
	}
	if b.EnvIDs == nil || len(b.EnvIDs) != envmeta.NumFeatures {
		panic("core: Env2Vec requires environment ids in the batch")
	}
	vfs := m.fnn.HiddenForward(t, t.Constant(b.X), train, rng)
	var vts *autodiff.Node
	if m.attention != nil {
		states := m.gru.ForwardWindowAll(t, t.Constant(b.Window))
		vts = m.attention.Forward(t, states)
	} else {
		vts = m.gru.ForwardWindow(t, t.Constant(b.Window))
	}
	vs := t.ConcatCols(vts, vfs)
	vd := m.dense.Forward(t, vs)

	// Concatenated environment embedding C = [ec¹ … ec⁴] (Equation 1).
	var c *autodiff.Node
	for k, emb := range m.embeddings {
		ids := b.EnvIDs[k]
		if train && m.cfg.UnkProb > 0 && rng != nil {
			ids = m.maskIDs(ids, rng)
		}
		e := emb.Forward(t, ids)
		if c == nil {
			c = e
		} else {
			c = t.ConcatCols(c, e)
		}
	}
	switch m.cfg.Head {
	case HeadBilinear:
		// y′ = v_d · R · C per example: (v_d R) ⊙ C summed per row.
		return t.SumRows(t.Mul(t.MatMul(vd, m.bilinear.Bind(t)), c))
	case HeadMLP:
		return m.headMLP.Forward(t, t.ConcatCols(vd, c), train, rng)
	default:
		// y′ = Σ (v_d ⊙ C), one scalar per row (Equation 2).
		return t.SumRows(t.Mul(vd, c))
	}
}

// maskIDs randomly replaces ids with <unk> so the unknown embedding is
// trained — the NLP trick that makes genuinely unseen metadata values fall
// back to a learned vector rather than noise.
func (m *Model) maskIDs(ids []int, rng *rand.Rand) []int {
	out := make([]int, len(ids))
	copy(out, ids)
	for i := range out {
		if rng.Float64() < m.cfg.UnkProb {
			out[i] = nn.UnknownIndex
		}
	}
	return out
}

// Loss implements nn.Model.
func (m *Model) Loss(t *autodiff.Tape, b *nn.Batch, train bool, rng *rand.Rand) *autodiff.Node {
	return t.MSE(m.forward(t, b, train, rng), b.Y)
}

// Predict implements nn.Model. It runs the tape-free fused forward path
// (internal/infer), which reads the layer weights in place and recycles its
// scratch space, so one trained model may be shared by any number of
// concurrently predicting goroutines — the online serving path batches many
// requests into a single call here. PredictTape keeps the graph-based path
// available as the reference implementation; the two agree to float64
// round-off (see the parity tests).
func (m *Model) Predict(b *nn.Batch) []float64 {
	if b.EnvIDs == nil {
		panic("core: Env2Vec requires environment ids in the batch")
	}
	return m.pred.Predict(b)
}

// PredictInto is Predict's zero-allocation form: it writes one prediction
// per batch row into out, which must be exactly batch-sized. Callers that
// recycle their result storage (the serve worker's forward stage) use this
// to keep the steady state allocation-free.
func (m *Model) PredictInto(out []float64, b *nn.Batch) {
	if b.EnvIDs == nil {
		panic("core: Env2Vec requires environment ids in the batch")
	}
	m.pred.PredictInto(out, b)
}

// NewPredictor32 exports the model's current weights into a frozen float32
// predictor (see infer.Predictor32). The snapshot is taken once, at call
// time: later training steps or restores on this model are not reflected,
// so serving rebuilds it per published model version — which is exactly the
// immutable-bundle contract internal/serve already enforces. The returned
// predictor keeps the Predict/PredictInto float64 API; only the internal
// arithmetic and weight storage narrow to float32.
func (m *Model) NewPredictor32() *infer.Predictor32 {
	return infer.NewPredictor32(m.network())
}

// PredictTape is the original inference-tape forward pass, retained as the
// slow-but-obviously-correct reference for Predict: it reuses the exact
// graph construction training uses (minus recording), so parity tests can
// hold the fused path to it.
func (m *Model) PredictTape(b *nn.Batch) []float64 {
	t := autodiff.NewInferenceTape()
	pred := m.forward(t, b, false, nil)
	out := make([]float64, pred.Value.Rows)
	copy(out, pred.Value.Data)
	return out
}

// Params implements nn.Model. Only the FNN's hidden layer participates —
// Env2Vec consumes v_fs directly, never the MLP's own regression head.
func (m *Model) Params() []*nn.Param {
	ps := nn.CollectParams(m.fnn.Hidden, m.gru, m.dense)
	for _, e := range m.embeddings {
		ps = append(ps, e.Params()...)
	}
	if m.attention != nil {
		ps = append(ps, m.attention.Params()...)
	}
	if m.bilinear != nil {
		ps = append(ps, m.bilinear)
	}
	if m.headMLP != nil {
		ps = append(ps, m.headMLP.Params()...)
	}
	return ps
}

// EmbeddingFor returns the concatenated environment embedding C for an
// environment, composing per-feature rows (falling back to <unk> rows for
// unseen values). ids must come from the same schema the model was built
// with.
func (m *Model) EmbeddingFor(ids [envmeta.NumFeatures]int) []float64 {
	out := make([]float64, 0, envmeta.NumFeatures*m.cfg.EmbedDim)
	for k, emb := range m.embeddings {
		id := ids[k]
		if id < 0 || id >= emb.Table.Value.Rows {
			id = nn.UnknownIndex
		}
		out = append(out, emb.Table.Value.Row(id)...)
	}
	return out
}

// EmbeddingMatrix stacks the concatenated embeddings of several encoded
// environments into a matrix (one row per environment); Figure 6 projects
// this matrix with PCA.
func (m *Model) EmbeddingMatrix(ids [][envmeta.NumFeatures]int) *tensor.Matrix {
	cdim := envmeta.NumFeatures * m.cfg.EmbedDim
	out := tensor.New(len(ids), cdim)
	for i, id := range ids {
		copy(out.Row(i), m.EmbeddingFor(id))
	}
	return out
}

// Snapshot captures the weights plus architecture metadata for serving.
func (m *Model) Snapshot() *nn.Snapshot {
	meta := map[string]string{
		"kind":   "env2vec",
		"config": fmt.Sprintf("%+v", m.cfg),
	}
	return nn.TakeSnapshot(m.Params(), meta)
}

// Restore loads weights from a snapshot produced by a structurally
// identical model.
func (m *Model) Restore(s *nn.Snapshot) error { return s.Restore(m.Params()) }

// SizeBytes returns the serialized model size (the paper reports <10 MB).
func (m *Model) SizeBytes() (int, error) {
	data, err := m.Snapshot().Bytes()
	if err != nil {
		return 0, err
	}
	return len(data), nil
}

// NumParameters returns the total scalar parameter count.
func (m *Model) NumParameters() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Value.Data)
	}
	return n
}
