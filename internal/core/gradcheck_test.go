package core

import (
	"math"
	"math/rand"
	"testing"

	"env2vec/internal/autodiff"
	"env2vec/internal/envmeta"
)

// TestFullModelGradientCheck validates the analytic gradients of the entire
// Env2Vec computation graph — FNN tower, GRU over the window, embedding
// lookups, dense layer, and the Hadamard prediction head — against central
// finite differences, for every parameter. This is the strongest
// correctness guarantee the model has: if any layer's backward rule were
// wrong, training would still "work" (descend something), just not the MSE.
func TestFullModelGradientCheck(t *testing.T) {
	for _, head := range []Head{HeadHadamard, HeadBilinear, HeadMLP} {
		head := head
		t.Run(head.String(), func(t *testing.T) { gradCheckVariant(t, head, false) })
	}
	t.Run("attention", func(t *testing.T) { gradCheckVariant(t, HeadHadamard, true) })
}

func gradCheckVariant(t *testing.T, head Head, attention bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	schema := envmeta.NewSchema()
	batch := twoEnvBatch(rng, schema, 5, 1.0)
	cfg := Config{
		In: 2, Hidden: 3, GRUHidden: 2, EmbedDim: 2, Window: 2,
		Seed: 1, Head: head, Attention: attention,
	}
	m := New(cfg, schema)

	loss := func() float64 {
		tape := autodiff.NewTape()
		return m.Loss(tape, batch, false, nil).Value.Data[0]
	}

	// Analytic gradients, snapshotted immediately: every later loss()
	// evaluation re-binds the parameters to fresh tapes, which would
	// otherwise clobber Grad().
	tape := autodiff.NewTape()
	l := m.Loss(tape, batch, false, nil)
	tape.Backward(l)
	analytic := make([][]float64, len(m.Params()))
	for pi, p := range m.Params() {
		g := p.Grad()
		if g == nil {
			t.Fatalf("param %s has no gradient", p.Name)
		}
		analytic[pi] = append([]float64(nil), g.Data...)
	}

	const h = 1e-6
	for pi, p := range m.Params() {
		grad := analytic[pi]
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			up := loss()
			p.Value.Data[i] = orig - h
			down := loss()
			p.Value.Data[i] = orig
			numeric := (up - down) / (2 * h)
			if math.Abs(grad[i]-numeric) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("param %s elem %d: analytic %g vs numeric %g", p.Name, i, grad[i], numeric)
			}
		}
	}
}

// TestGradientsZeroForUnusedEmbeddings confirms that only looked-up (or
// <unk>) embedding rows receive gradient — the sparsity that makes
// embedding tables cheap to train.
func TestGradientsZeroForUnusedEmbeddings(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	schema := envmeta.NewSchema()
	// Observe two environments but build a batch that uses only the first.
	e1 := envmeta.Environment{Testbed: "tbA", SUT: "db", Testcase: "load", Build: "S01"}
	e2 := envmeta.Environment{Testbed: "tbB", SUT: "fw", Testcase: "soak", Build: "D01"}
	ids1 := schema.Observe(e1)
	ids2 := schema.Observe(e2)

	b := twoEnvBatch(rng, schema, 4, 1.0)
	for k := range b.EnvIDs {
		for i := range b.EnvIDs[k] {
			b.EnvIDs[k][i] = ids1[k]
		}
	}
	cfg := smallConfig()
	cfg.UnkProb = 0
	m := New(cfg, schema)
	tape := autodiff.NewTape()
	loss := m.Loss(tape, b, false, nil)
	tape.Backward(loss)

	for k, emb := range m.embeddings {
		grad := emb.Table.Grad()
		usedRow := grad.Row(ids1[k])
		unusedRow := grad.Row(ids2[k])
		usedNorm, unusedNorm := 0.0, 0.0
		for j := range usedRow {
			usedNorm += usedRow[j] * usedRow[j]
			unusedNorm += unusedRow[j] * unusedRow[j]
		}
		if usedNorm == 0 {
			t.Fatalf("feature %d: used embedding row got no gradient", k)
		}
		if unusedNorm != 0 {
			t.Fatalf("feature %d: unused embedding row got gradient", k)
		}
	}
}
