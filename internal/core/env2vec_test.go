package core

import (
	"math"
	"math/rand"
	"testing"

	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// twoEnvBatch builds data where the SAME contextual features map to
// DIFFERENT targets depending on the environment: env A adds +offset, env B
// subtracts it. Only a model that conditions on the environment can fit it.
func twoEnvBatch(rng *rand.Rand, schema *envmeta.Schema, n int, offset float64) *nn.Batch {
	envA := envmeta.Environment{Testbed: "tbA", SUT: "db", Testcase: "load", Build: "S01"}
	envB := envmeta.Environment{Testbed: "tbB", SUT: "db", Testcase: "load", Build: "D01"}
	idsA := schema.Observe(envA)
	idsB := schema.Observe(envB)
	b := &nn.Batch{
		X:      tensor.New(n, 2),
		Window: tensor.New(n, 2),
		Y:      tensor.New(n, 1),
		EnvIDs: make([][]int, envmeta.NumFeatures),
	}
	for k := range b.EnvIDs {
		b.EnvIDs[k] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		b.X.Set(i, 0, x0)
		b.X.Set(i, 1, x1)
		b.Window.Set(i, 0, rng.NormFloat64()*0.1)
		b.Window.Set(i, 1, rng.NormFloat64()*0.1)
		base := 0.8*x0 - 0.4*x1
		ids := idsA
		sign := 1.0
		if i%2 == 1 {
			ids = idsB
			sign = -1
		}
		b.Y.Set(i, 0, base+sign*offset)
		for k := range b.EnvIDs {
			b.EnvIDs[k][i] = ids[k]
		}
	}
	return b
}

func smallConfig() Config {
	return Config{In: 2, Hidden: 12, GRUHidden: 6, EmbedDim: 4, Window: 2, Seed: 1, UnkProb: 0.02}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	schema := envmeta.NewSchema()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New(Config{}, schema)
}

func TestForwardRequiresWindowAndEnvIDs(t *testing.T) {
	schema := envmeta.NewSchema()
	m := New(smallConfig(), schema)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("missing window should panic")
			}
		}()
		m.Predict(&nn.Batch{X: tensor.New(1, 2), Y: tensor.New(1, 1)})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("missing env ids should panic")
			}
		}()
		m.Predict(&nn.Batch{X: tensor.New(1, 2), Window: tensor.New(1, 2), Y: tensor.New(1, 1)})
	}()
}

func TestLearnsEnvironmentDependentResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	schema := envmeta.NewSchema()
	train := twoEnvBatch(rng, schema, 400, 2.0)
	m := New(smallConfig(), schema)
	nn.Train(m, nn.NewAdam(0.01), train, nil, nn.TrainConfig{Epochs: 80, BatchSize: 32, Seed: 1})
	mse := nn.EvalMSE(m, train)
	if mse > 0.25 {
		t.Fatalf("Env2Vec failed to learn env-dependent response: mse=%v", mse)
	}
	// The environment must drive the difference: same features, different
	// env ids → predictions ~4 apart.
	probe := train.Subset([]int{0, 1})
	copy(probe.X.Row(1), probe.X.Row(0))
	copy(probe.Window.Row(1), probe.Window.Row(0))
	preds := m.Predict(probe)
	if diff := preds[0] - preds[1]; math.Abs(diff-4) > 1.2 {
		t.Fatalf("environment offset not learned: diff=%v (want ≈4)", diff)
	}
}

func TestEmbeddingBeatsNoEmbeddingOnMixedEnvs(t *testing.T) {
	// RFNN_all-style ablation inside core: zeroing the environment signal
	// (all ids = <unk>) must hurt on environment-dependent data.
	rng := rand.New(rand.NewSource(2))
	schema := envmeta.NewSchema()
	train := twoEnvBatch(rng, schema, 400, 2.0)
	m := New(smallConfig(), schema)
	nn.Train(m, nn.NewAdam(0.01), train, nil, nn.TrainConfig{Epochs: 80, BatchSize: 32, Seed: 1})
	withEnv := nn.EvalMSE(m, train)

	blind := &nn.Batch{X: train.X, Window: train.Window, Y: train.Y, EnvIDs: make([][]int, envmeta.NumFeatures)}
	for k := range blind.EnvIDs {
		blind.EnvIDs[k] = make([]int, train.Len()) // all UnknownIndex
	}
	withoutEnv := nn.EvalMSE(m, blind)
	if withoutEnv <= withEnv {
		t.Fatalf("removing env ids should hurt: with=%v without=%v", withEnv, withoutEnv)
	}
}

func TestEmbeddingForComposition(t *testing.T) {
	schema := envmeta.NewSchema()
	e1 := envmeta.Environment{Testbed: "tb1", SUT: "db", Testcase: "load", Build: "S01"}
	e2 := envmeta.Environment{Testbed: "tb2", SUT: "db", Testcase: "load", Build: "S01"}
	ids1 := schema.Observe(e1)
	ids2 := schema.Observe(e2)
	m := New(smallConfig(), schema)
	c1 := m.EmbeddingFor(ids1)
	c2 := m.EmbeddingFor(ids2)
	d := m.cfg.EmbedDim
	if len(c1) != envmeta.NumFeatures*d {
		t.Fatalf("embedding length %d", len(c1))
	}
	// Shared SUT/testcase/build features → identical middle segments;
	// different testbeds → different first segment.
	firstDiffers := false
	for j := 0; j < d; j++ {
		if c1[j] != c2[j] {
			firstDiffers = true
		}
	}
	if !firstDiffers {
		t.Fatalf("different testbeds should differ in the first segment")
	}
	for j := d; j < 4*d; j++ {
		if c1[j] != c2[j] {
			t.Fatalf("shared features should share embedding segments")
		}
	}
	// Unseen values fall back to the <unk> row.
	unseen := schema.Encode(envmeta.Environment{Testbed: "never", SUT: "db", Testcase: "load", Build: "S01"})
	cu := m.EmbeddingFor(unseen)
	unkRow := m.embeddings[0].Table.Value.Row(nn.UnknownIndex)
	for j := 0; j < d; j++ {
		if cu[j] != unkRow[j] {
			t.Fatalf("unseen testbed should use <unk> embedding")
		}
	}
}

func TestEmbeddingMatrix(t *testing.T) {
	schema := envmeta.NewSchema()
	ids := [][envmeta.NumFeatures]int{
		schema.Observe(envmeta.Environment{Testbed: "a", SUT: "b", Testcase: "c", Build: "S1"}),
		schema.Observe(envmeta.Environment{Testbed: "d", SUT: "e", Testcase: "f", Build: "D1"}),
	}
	m := New(smallConfig(), schema)
	mat := m.EmbeddingMatrix(ids)
	if mat.Rows != 2 || mat.Cols != envmeta.NumFeatures*m.cfg.EmbedDim {
		t.Fatalf("matrix shape %dx%d", mat.Rows, mat.Cols)
	}
	want := m.EmbeddingFor(ids[1])
	for j, v := range want {
		if mat.At(1, j) != v {
			t.Fatalf("row 1 should equal EmbeddingFor")
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	schema := envmeta.NewSchema()
	b := twoEnvBatch(rng, schema, 50, 1)
	m := New(smallConfig(), schema)
	nn.Train(m, nn.NewAdam(0.01), b, nil, nn.TrainConfig{Epochs: 3, BatchSize: 16, Seed: 1})
	snap := m.Snapshot()
	if snap.Meta["kind"] != "env2vec" {
		t.Fatalf("meta missing")
	}
	m2 := New(smallConfig(), schema)
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m.Predict(b), m2.Predict(b)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("restored model predicts differently")
		}
	}
}

func TestSizeAndParameterCount(t *testing.T) {
	schema := envmeta.NewSchema()
	schema.Observe(envmeta.Environment{Testbed: "a", SUT: "b", Testcase: "c", Build: "S1"})
	m := New(DefaultConfig(14), schema)
	n := m.NumParameters()
	if n <= 0 {
		t.Fatalf("no parameters")
	}
	size, err := m.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 || size > 10*1024*1024 {
		t.Fatalf("model size %d bytes violates the <10MB storage claim", size)
	}
}

func TestUnkMaskTrainsUnknownEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	schema := envmeta.NewSchema()
	b := twoEnvBatch(rng, schema, 200, 1)
	cfg := smallConfig()
	cfg.UnkProb = 0.3 // aggressive so the test is fast
	m := New(cfg, schema)
	before := append([]float64(nil), m.embeddings[0].Table.Value.Row(nn.UnknownIndex)...)
	nn.Train(m, nn.NewAdam(0.01), b, nil, nn.TrainConfig{Epochs: 10, BatchSize: 32, Seed: 1})
	after := m.embeddings[0].Table.Value.Row(nn.UnknownIndex)
	moved := false
	for j := range after {
		if after[j] != before[j] {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("<unk> embedding never received gradient")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(86)
	if cfg.EmbedDim != 10 {
		t.Fatalf("paper initializes embeddings with dimension 10, got %d", cfg.EmbedDim)
	}
	if cfg.In != 86 {
		t.Fatalf("In not propagated")
	}
}

func TestTrainingDeterministic(t *testing.T) {
	run := func() float64 {
		rng := rand.New(rand.NewSource(5))
		schema := envmeta.NewSchema()
		b := twoEnvBatch(rng, schema, 100, 1)
		m := New(smallConfig(), schema)
		nn.Train(m, nn.NewAdam(0.01), b, nil, nn.TrainConfig{Epochs: 5, BatchSize: 16, Seed: 2})
		return nn.EvalMSE(m, b)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("training not deterministic: %v vs %v", a, b)
	}
}
