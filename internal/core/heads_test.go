package core

import (
	"math/rand"
	"strings"
	"testing"

	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
)

func TestHeadString(t *testing.T) {
	if HeadHadamard.String() != "hadamard" || HeadBilinear.String() != "bilinear" || HeadMLP.String() != "mlp" {
		t.Fatalf("head strings wrong")
	}
	if !strings.Contains(Head(9).String(), "9") {
		t.Fatalf("unknown head should render number")
	}
}

func TestUnknownHeadPanics(t *testing.T) {
	cfg := smallConfig()
	cfg.Head = Head(42)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New(cfg, envmeta.NewSchema())
}

// TestAllHeadsLearnEnvironmentOffsets verifies that every prediction head
// (Equation 2, bilinear, MLP) can fit the environment-dependent synthetic
// task — §3.2 says the alternatives "yield similar results".
func TestAllHeadsLearnEnvironmentOffsets(t *testing.T) {
	for _, head := range []Head{HeadHadamard, HeadBilinear, HeadMLP} {
		head := head
		t.Run(head.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			schema := envmeta.NewSchema()
			train := twoEnvBatch(rng, schema, 300, 2.0)
			cfg := smallConfig()
			cfg.Head = head
			m := New(cfg, schema)
			nn.Train(m, nn.NewAdam(0.01), train, nil, nn.TrainConfig{Epochs: 80, BatchSize: 32, Seed: 1})
			if mse := nn.EvalMSE(m, train); mse > 0.5 {
				t.Fatalf("head %v failed to fit: mse=%v", head, mse)
			}
		})
	}
}

func TestHeadParamCountsDiffer(t *testing.T) {
	schema := envmeta.NewSchema()
	schema.Observe(envmeta.Environment{Testbed: "a", SUT: "b", Testcase: "c", Build: "S1"})
	base := smallConfig()
	counts := map[Head]int{}
	for _, head := range []Head{HeadHadamard, HeadBilinear, HeadMLP} {
		cfg := base
		cfg.Head = head
		counts[head] = New(cfg, schema).NumParameters()
	}
	// §3.2: the alternative heads "require more parameters to learn".
	if counts[HeadBilinear] <= counts[HeadHadamard] || counts[HeadMLP] <= counts[HeadHadamard] {
		t.Fatalf("alternative heads should cost parameters: %v", counts)
	}
}

func TestAttentionVariantLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	schema := envmeta.NewSchema()
	train := twoEnvBatch(rng, schema, 300, 2.0)
	cfg := smallConfig()
	cfg.Attention = true
	m := New(cfg, schema)
	if len(m.Params()) <= len(New(smallConfig(), envmeta.NewSchema()).Params()) {
		t.Fatalf("attention variant should add parameters")
	}
	nn.Train(m, nn.NewAdam(0.01), train, nil, nn.TrainConfig{Epochs: 80, BatchSize: 32, Seed: 1})
	if mse := nn.EvalMSE(m, train); mse > 0.5 {
		t.Fatalf("attention variant failed to fit: mse=%v", mse)
	}
}

func TestSnapshotRoundTripPerVariant(t *testing.T) {
	variants := []Config{}
	for _, head := range []Head{HeadHadamard, HeadBilinear, HeadMLP} {
		cfg := smallConfig()
		cfg.Head = head
		variants = append(variants, cfg)
	}
	attn := smallConfig()
	attn.Attention = true
	variants = append(variants, attn)

	for _, cfg := range variants {
		rng := rand.New(rand.NewSource(3))
		schema := envmeta.NewSchema()
		b := twoEnvBatch(rng, schema, 40, 1)
		m := New(cfg, schema)
		nn.Train(m, nn.NewAdam(0.01), b, nil, nn.TrainConfig{Epochs: 2, BatchSize: 16, Seed: 1})
		m2 := New(cfg, schema)
		if err := m2.Restore(m.Snapshot()); err != nil {
			t.Fatalf("variant %+v restore: %v", cfg, err)
		}
		p1, p2 := m.Predict(b), m2.Predict(b)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("variant head=%v attn=%v predicts differently after restore", cfg.Head, cfg.Attention)
			}
		}
	}
}
