// The cross-precision parity battery: every serving path — the autodiff
// tape reference, the fused float64 path (register-blocked kernels), and
// the frozen float32 path (vector tiles on amd64) — must agree on the same
// inputs to its documented tolerance:
//
//   - fused float64 vs tape: ≤1e-12 relative. The blocked kernels keep the
//     naive kernels' per-element accumulation order, so this is the same
//     round-off bound the pre-blocking path satisfied.
//   - float32 vs tape: ≤1e-4 relative. Weights round once at load, inputs
//     once per call, and the error then grows with accumulation length;
//     docs/performance.md derives the budget. In practice the observed gap
//     is ~1e-6; 1e-4 is the contract serving alerts on.
//
// Hidden sizes here are deliberately NOT multiples of the 4-lane block
// width (and not multiples of the 16-column float32 vector tile), so every
// ragged tail path in the kernels is load-bearing in these assertions.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
)

// randomizeParamsScaled perturbs every weight like a trained network looks:
// zero-mean with σ = 1/√fan-in per matrix (Xavier-style). The flat-σ
// randomizeParams used by the float64 parity tests is deliberately harsher,
// but at σ=0.5 a 30-wide recurrent matrix has spectral radius ≈ 2.7 — the
// hidden state then amplifies float32 round-off exponentially over 20 steps,
// a regime no initialized or trained model operates in. The 1e-4 float32
// contract is for realistic weight magnitudes, so this battery tests there.
func randomizeParamsScaled(m *Model, rng *rand.Rand) {
	for _, p := range m.Params() {
		sigma := 1 / math.Sqrt(float64(p.Value.Rows))
		for i := range p.Value.Data {
			p.Value.Data[i] = rng.NormFloat64() * sigma
		}
	}
}

// assertParity checks one batch across all three paths.
func assertParity(t *testing.T, m *Model, b *nn.Batch, label string) {
	t.Helper()
	tape := m.PredictTape(b)
	fused := m.Predict(b)
	f32 := m.NewPredictor32().Predict(b)
	if len(fused) != len(tape) || len(f32) != len(tape) {
		t.Fatalf("%s: prediction lengths diverge (tape %d, fused %d, f32 %d)", label, len(tape), len(fused), len(f32))
	}
	for i := range tape {
		scale := math.Max(1, math.Abs(tape[i]))
		if d := math.Abs(fused[i] - tape[i]); d > 1e-12*scale {
			t.Fatalf("%s row %d: fused f64 %v vs tape %v (diff %g > 1e-12 rel)", label, i, fused[i], tape[i], d)
		}
		if d := math.Abs(f32[i] - tape[i]); d > 1e-4*scale {
			t.Fatalf("%s row %d: f32 %v vs tape %v (diff %g > 1e-4 rel)", label, i, f32[i], tape[i], d)
		}
	}
}

// TestCrossPrecisionParity is the table-driven battery: all heads ×
// attention on/off × tail-heavy hidden sizes × batch sizes 1..32 × window
// lengths 1..20.
func TestCrossPrecisionParity(t *testing.T) {
	schema := envmeta.NewSchema()
	for i := 0; i < 3; i++ {
		schema.Observe(envmeta.Environment{
			Testbed:  fmt.Sprintf("tb%d", i),
			SUT:      fmt.Sprintf("sut%d", i),
			Testcase: fmt.Sprintf("tc%d", i),
			Build:    fmt.Sprintf("b%d", i),
		})
	}
	sizes := schema.Sizes()

	// GRU/FNN widths straddle the 4-lane block width and the 16-column
	// vector tile: primes, one-past-a-multiple, and one big enough to hit
	// full tiles plus a tail.
	dims := []struct{ hidden, gruHidden, embedDim int }{
		{9, 5, 3},
		{13, 7, 5},
		{21, 17, 3},
		{34, 30, 5},
	}
	for _, head := range []Head{HeadHadamard, HeadBilinear, HeadMLP} {
		for _, attention := range []bool{false, true} {
			for di, d := range dims {
				name := fmt.Sprintf("head=%v/attention=%v/H=%d", head, attention, d.gruHidden)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(1000*int(head) + 100*b2i(attention) + di)))
					for _, window := range []int{1, 2, 7, 20} {
						cfg := Config{
							In: 3, Hidden: d.hidden, GRUHidden: d.gruHidden, EmbedDim: d.embedDim,
							Window: window, Seed: 5, Head: head, Attention: attention,
						}
						m := New(cfg, schema)
						randomizeParamsScaled(m, rng)
						for _, n := range []int{1, 3, 8, 32} {
							b := randomParityBatch(rng, sizes, n, cfg.In, window)
							assertParity(t, m, b, fmt.Sprintf("window=%d n=%d", window, n))
						}
					}
				})
			}
		}
	}
}

// FuzzPredictParity lets the fuzzer pick the architecture, batch shape, and
// weight seed; the property is the same three-way tolerance contract. The
// corpus seeds cover each head and the attention path.
func FuzzPredictParity(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(19), uint8(4), uint8(0), false)
	f.Add(int64(2), uint8(7), uint8(0), uint8(2), uint8(1), false)
	f.Add(int64(3), uint8(31), uint8(9), uint8(11), uint8(2), true)
	f.Add(int64(4), uint8(2), uint8(4), uint8(0), uint8(0), true)

	schema := envmeta.NewSchema()
	for i := 0; i < 3; i++ {
		schema.Observe(envmeta.Environment{
			Testbed:  fmt.Sprintf("tb%d", i),
			SUT:      fmt.Sprintf("sut%d", i),
			Testcase: fmt.Sprintf("tc%d", i),
			Build:    fmt.Sprintf("b%d", i),
		})
	}
	sizes := schema.Sizes()

	f.Fuzz(func(t *testing.T, seed int64, batchSel, windowSel, hiddenSel, headSel uint8, attention bool) {
		n := int(batchSel)%32 + 1       // 1..32
		window := int(windowSel)%20 + 1 // 1..20
		gruH := int(hiddenSel)%15 + 2   // 2..16, mostly off the lane width
		head := Head(int(headSel) % 3)
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			In: 3, Hidden: gruH + 3, GRUHidden: gruH, EmbedDim: 3,
			Window: window, Seed: seed, Head: head, Attention: attention,
		}
		m := New(cfg, schema)
		randomizeParamsScaled(m, rng)
		b := randomParityBatch(rng, sizes, n, cfg.In, window)
		assertParity(t, m, b, fmt.Sprintf("seed=%d n=%d window=%d H=%d head=%v attn=%v", seed, n, window, gruH, head, attention))
	})
}
