package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
)

// TestPredictConcurrent exercises the inference-tape path: many goroutines
// share one model and must all see identical, correct predictions without
// racing on parameter bindings (run with -race to verify). This is the
// property the internal/serve worker pool depends on.
func TestPredictConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schema := envmeta.NewSchema()
	batch := twoEnvBatch(rng, schema, 64, 1.5)
	m := New(smallConfig(), schema)

	want := m.Predict(batch)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				got := m.Predict(batch)
				for i := range got {
					if math.Abs(got[i]-want[i]) > 1e-12 {
						errs <- "concurrent prediction diverged from serial prediction"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestPredictConcurrentMixedBatches stresses the fused path's scratch-arena
// pool: goroutines predicting at different batch sizes force arenas to be
// recycled across differently shaped passes (growth, chunk reuse, header
// reuse). Run with -race; any cross-pass sharing of scratch shows up as a
// data race or a numeric divergence.
func TestPredictConcurrentMixedBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	schema := envmeta.NewSchema()
	m := New(smallConfig(), schema)

	sizes := []int{1, 3, 8, 32, 64}
	batches := make([]*nn.Batch, len(sizes))
	want := make([][]float64, len(sizes))
	for i, n := range sizes {
		batches[i] = twoEnvBatch(rng, schema, n, 1.5)
		want[i] = m.Predict(batches[i])
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				k := (g + iter) % len(sizes)
				got := m.Predict(batches[k])
				for i := range got {
					if math.Abs(got[i]-want[k][i]) > 1e-12 {
						errs <- "mixed-batch concurrent prediction diverged"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
