package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"env2vec/internal/envmeta"
)

// TestPredictConcurrent exercises the inference-tape path: many goroutines
// share one model and must all see identical, correct predictions without
// racing on parameter bindings (run with -race to verify). This is the
// property the internal/serve worker pool depends on.
func TestPredictConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schema := envmeta.NewSchema()
	batch := twoEnvBatch(rng, schema, 64, 1.5)
	m := New(smallConfig(), schema)

	want := m.Predict(batch)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				got := m.Predict(batch)
				for i := range got {
					if math.Abs(got[i]-want[i]) > 1e-12 {
						errs <- "concurrent prediction diverged from serial prediction"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
