package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"env2vec/internal/autodiff"
	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
)

// TestPredictConcurrent exercises the inference-tape path: many goroutines
// share one model and must all see identical, correct predictions without
// racing on parameter bindings (run with -race to verify). This is the
// property the internal/serve worker pool depends on.
func TestPredictConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schema := envmeta.NewSchema()
	batch := twoEnvBatch(rng, schema, 64, 1.5)
	m := New(smallConfig(), schema)

	want := m.Predict(batch)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				got := m.Predict(batch)
				for i := range got {
					if math.Abs(got[i]-want[i]) > 1e-12 {
						errs <- "concurrent prediction diverged from serial prediction"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestPredictConcurrentMixedPrecisionTraining is the race gate for the
// float32 serving path: Adam keeps stepping the model's float64 weights
// while float32 predictors — frozen snapshots taken before training — keep
// predicting concurrently with NO synchronization, and float64 predictors
// interleave with the optimizer under the lock training requires. Run with
// -race. The properties:
//
//   - the frozen float32 path never races with training (it copied its
//     weights at construction) and its outputs stay bit-stable throughout;
//   - a float32 predictor built AFTER training reflects the new weights,
//     proving the freeze is per-snapshot, not per-model;
//   - the live-weight float64 path sees every completed optimizer step
//     (reads synchronized the way a training loop that also serves must).
func TestPredictConcurrentMixedPrecisionTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	schema := envmeta.NewSchema()
	batch := twoEnvBatch(rng, schema, 16, 1.5)
	m := New(smallConfig(), schema)

	p32 := m.NewPredictor32()
	want32 := p32.Predict(batch)
	opt := nn.NewAdam(0.01)

	var mu sync.RWMutex // write: optimizer steps; read: live-weight f64 predicts
	done := make(chan struct{})
	errs := make(chan string, 16)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // trainer: real tape backward + Adam steps, in-place mutation
		defer wg.Done()
		defer close(done)
		for step := 0; step < 30; step++ {
			mu.Lock()
			tape := autodiff.NewTape()
			loss := m.Loss(tape, batch, true, rng)
			tape.Backward(loss)
			opt.Step(m.Params())
			mu.Unlock()
		}
	}()
	for g := 0; g < 4; g++ { // frozen float32 predictors: no lock at all
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				got := p32.Predict(batch)
				for i := range got {
					if got[i] != want32[i] {
						errs <- "frozen float32 predictions changed while training mutated the model"
						return
					}
				}
			}
		}()
	}
	for g := 0; g < 4; g++ { // live-weight float64 predictors, read-locked
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.RLock()
				got := m.Predict(batch)
				mu.RUnlock()
				for _, v := range got {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						errs <- "live float64 prediction produced a non-finite value mid-training"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}

	// The freeze is per-snapshot: a new conversion sees the trained weights.
	after32 := m.NewPredictor32().Predict(batch)
	wantAfter := m.Predict(batch)
	moved := false
	for i := range after32 {
		scale := math.Max(1, math.Abs(wantAfter[i]))
		if math.Abs(after32[i]-wantAfter[i]) > 1e-4*scale {
			t.Fatalf("row %d: post-training float32 %v vs float64 %v", i, after32[i], wantAfter[i])
		}
		if after32[i] != want32[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("training did not change predictions — the race test exercised nothing")
	}
}

// TestPredictConcurrentMixedBatches stresses the fused path's scratch-arena
// pool: goroutines predicting at different batch sizes force arenas to be
// recycled across differently shaped passes (growth, chunk reuse, header
// reuse). Run with -race; any cross-pass sharing of scratch shows up as a
// data race or a numeric divergence.
func TestPredictConcurrentMixedBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	schema := envmeta.NewSchema()
	m := New(smallConfig(), schema)

	sizes := []int{1, 3, 8, 32, 64}
	batches := make([]*nn.Batch, len(sizes))
	want := make([][]float64, len(sizes))
	for i, n := range sizes {
		batches[i] = twoEnvBatch(rng, schema, n, 1.5)
		want[i] = m.Predict(batches[i])
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				k := (g + iter) % len(sizes)
				got := m.Predict(batches[k])
				for i := range got {
					if math.Abs(got[i]-want[k][i]) > 1e-12 {
						errs <- "mixed-batch concurrent prediction diverged"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
