package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// randomizeParams replaces every trainable matrix with fresh random values,
// so parity is checked at an arbitrary point in weight space rather than at
// the (partly zero) initialization.
func randomizeParams(m *Model, rng *rand.Rand) {
	for _, p := range m.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] = rng.NormFloat64() * 0.5
		}
	}
}

// randomParityBatch builds a batch with random features, windows, and env
// ids — including deliberately out-of-range ids to exercise the <unk> clamp
// on both forward paths.
func randomParityBatch(rng *rand.Rand, sizes [envmeta.NumFeatures]int, n, in, window int) *nn.Batch {
	b := &nn.Batch{
		X:      tensor.New(n, in),
		Window: tensor.New(n, window),
		Y:      tensor.New(n, 1),
		EnvIDs: make([][]int, envmeta.NumFeatures),
	}
	b.X.RandNormal(rng, 1)
	b.Window.RandNormal(rng, 1)
	for k := range b.EnvIDs {
		b.EnvIDs[k] = make([]int, n)
		for i := range b.EnvIDs[k] {
			switch rng.Intn(8) {
			case 0:
				b.EnvIDs[k][i] = -1 - rng.Intn(3) // negative → <unk>
			case 1:
				b.EnvIDs[k][i] = sizes[k] + 1 + rng.Intn(3) // past vocab → <unk>
			default:
				b.EnvIDs[k][i] = rng.Intn(sizes[k] + 1)
			}
		}
	}
	return b
}

// TestInferMatchesTape is the fused-path acceptance property: across every
// head, with and without attention, and across batch and window sizes, the
// tape-free path must agree with the inference-tape reference far below the
// documented 1e-9 bound. The two paths share operation order, so they agree
// to float64 round-off.
func TestInferMatchesTape(t *testing.T) {
	schema := envmeta.NewSchema()
	for i := 0; i < 3; i++ {
		schema.Observe(envmeta.Environment{
			Testbed:  fmt.Sprintf("tb%d", i),
			SUT:      fmt.Sprintf("sut%d", i),
			Testcase: fmt.Sprintf("tc%d", i),
			Build:    fmt.Sprintf("b%d", i),
		})
	}
	sizes := schema.Sizes()

	heads := []Head{HeadHadamard, HeadBilinear, HeadMLP}
	for _, head := range heads {
		for _, attention := range []bool{false, true} {
			for _, window := range []int{1, 5, 20} {
				name := fmt.Sprintf("head=%v/attention=%v/window=%d", head, attention, window)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(97*int(head) + 13*window + b2i(attention))))
					cfg := Config{
						In: 3, Hidden: 8, GRUHidden: 5, EmbedDim: 3,
						Window: window, Seed: 3, Head: head, Attention: attention,
					}
					m := New(cfg, schema)
					randomizeParams(m, rng)
					for _, n := range []int{1, 3, 8, 32} {
						b := randomParityBatch(rng, sizes, n, cfg.In, window)
						got := m.Predict(b)
						want := m.PredictTape(b)
						if len(got) != len(want) {
							t.Fatalf("n=%d: got %d predictions, want %d", n, len(got), len(want))
						}
						for i := range got {
							diff := math.Abs(got[i] - want[i])
							scale := math.Max(1, math.Abs(want[i]))
							if diff > 1e-12*scale {
								t.Fatalf("n=%d row %d: infer %v vs tape %v (diff %g)", n, i, got[i], want[i], diff)
							}
						}
					}
				})
			}
		}
	}
}

// TestInferTracksWeightMutation guards the no-caching contract: Predict must
// see optimizer-style in-place weight updates and snapshot restores without
// any predictor rebuild.
func TestInferTracksWeightMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	schema := envmeta.NewSchema()
	batch := twoEnvBatch(rng, schema, 16, 1.0)
	m := New(smallConfig(), schema)

	before := m.Predict(batch)
	snap := m.Snapshot()

	// Mutate every weight in place, the way Adam steps and Restore do.
	for _, p := range m.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] += 0.1 * (rng.Float64() - 0.5)
		}
	}
	after := m.Predict(batch)
	if wantAfter := m.PredictTape(batch); !closeTo(after, wantAfter, 1e-12) {
		t.Fatalf("post-mutation predictions diverge from tape")
	}
	changed := false
	for i := range after {
		if after[i] != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatalf("weight mutation did not affect predictions — predictor is caching weights")
	}

	if err := m.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restored := m.Predict(batch); !closeTo(restored, before, 1e-12) {
		t.Fatalf("post-restore predictions differ from pre-snapshot predictions")
	}
}

func closeTo(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
