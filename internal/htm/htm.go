// Package htm implements a simplified HTM-style streaming anomaly detector
// standing in for Numenta's HTM-AD (Ahmad et al., Neurocomputing 2017),
// the unsupervised baseline of §4.2.2. Like the original, it is univariate
// and context-free: it sees only the resource-usage series, never the
// contextual features — which is exactly the property the paper's
// comparison isolates.
//
// The pipeline mirrors HTM-AD's three stages at reduced fidelity:
//
//  1. Encoding: scalar values are quantized into buckets over an adaptive
//     range (in place of a sparse distributed representation).
//  2. Sequence memory: an online first-order transition model predicts the
//     next bucket distribution (in place of the temporal-memory algorithm);
//     the raw anomaly score is 1 − normalized likelihood of the observed
//     bucket.
//  3. Anomaly likelihood: raw scores are smoothed by comparing a short-term
//     mean against the long-term raw-score distribution through a Gaussian
//     tail, yielding the familiar 0..1 likelihood that saturates only for
//     genuinely novel behavior.
package htm

import (
	"math"

	"env2vec/internal/stats"
)

// Config tunes the detector.
type Config struct {
	Buckets     int // quantization resolution
	ShortWindow int // short-term raw-score averaging window
	LongWindow  int // long-term raw-score distribution window
	Warmup      int // steps before scores are emitted (0 during warmup)
}

// DefaultConfig returns parameters that behave like the reference
// implementation on 15-minute telemetry.
func DefaultConfig() Config {
	return Config{Buckets: 40, ShortWindow: 4, LongWindow: 120, Warmup: 16}
}

// Detector is an online anomaly detector over a single scalar stream.
type Detector struct {
	cfg Config

	min, max   float64
	haveRange  bool
	frozen     bool        // encoding range frozen after warmup
	counts     [][]float64 // transition counts between buckets
	totals     []float64   // outgoing counts per bucket
	prevBucket int
	havePrev   bool

	raw  []float64 // ring of recent raw scores (long window)
	seen int
}

// New creates a detector; zero-valued config fields fall back to defaults.
func New(cfg Config) *Detector {
	def := DefaultConfig()
	if cfg.Buckets <= 0 {
		cfg.Buckets = def.Buckets
	}
	if cfg.ShortWindow <= 0 {
		cfg.ShortWindow = def.ShortWindow
	}
	if cfg.LongWindow <= 0 {
		cfg.LongWindow = def.LongWindow
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = def.Warmup
	}
	d := &Detector{cfg: cfg}
	d.counts = make([][]float64, cfg.Buckets)
	for i := range d.counts {
		d.counts[i] = make([]float64, cfg.Buckets)
	}
	d.totals = make([]float64, cfg.Buckets)
	return d
}

// bucket quantizes v. During warmup the range adapts to the data; after
// warmup it is frozen (with a safety margin) and out-of-range values clip to
// the edge buckets, matching the fixed-range scalar encoder of the
// reference implementation. Without freezing, a level shift would remap
// every previously learned bucket and corrupt the transition model.
func (d *Detector) bucket(v float64) int {
	if !d.haveRange {
		d.min, d.max = v, v
		d.haveRange = true
	}
	if !d.frozen {
		if v < d.min {
			d.min = v
		}
		if v > d.max {
			d.max = v
		}
		if d.seen+1 >= d.cfg.Warmup {
			// A full observed span of headroom on each side: ordinary
			// noise then never reaches the edge buckets, so genuine level
			// shifts land in untouched territory instead of aliasing with
			// routine clipping.
			margin := d.max - d.min
			if margin == 0 {
				margin = 1
			}
			d.min -= margin
			d.max += margin
			d.frozen = true
		}
	}
	span := d.max - d.min
	if span == 0 {
		return 0
	}
	b := int(float64(d.cfg.Buckets) * (v - d.min) / span)
	if b >= d.cfg.Buckets {
		b = d.cfg.Buckets - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// smearWeights spread encoding mass over neighbor buckets, emulating the
// overlap of adjacent scalar SDR encodings.
var smearWeights = []float64{0.25, 0.6, 1, 0.6, 0.25}

// smearAdd adds a smeared unit of transition mass centered at bucket b.
func (d *Detector) smearAdd(row []float64, b int) {
	half := len(smearWeights) / 2
	for k, w := range smearWeights {
		if i := b + k - half; i >= 0 && i < len(row) {
			row[i] += w
		}
	}
}

// smoothedAt reads the smeared transition mass at bucket b.
func (d *Detector) smoothedAt(row []float64, b int) float64 {
	half := len(smearWeights) / 2
	s := 0.0
	for k, w := range smearWeights {
		if i := b + k - half; i >= 0 && i < len(row) {
			s += w * row[i]
		}
	}
	return s
}

// Step consumes the next value and returns the anomaly likelihood in [0,1].
// Scores during warmup are 0.
func (d *Detector) Step(v float64) float64 {
	b := d.bucket(v)
	raw := 0.0
	if d.havePrev {
		row := d.counts[d.prevBucket]
		total := d.totals[d.prevBucket]
		if total > 0 {
			// A bucket counts as "predicted" when its smeared transition
			// mass reaches a fraction of the strongest prediction; learned
			// patterns (including quantization jitter) then score 0 and
			// only genuinely novel transitions score 1, like the binary
			// column-overlap score of the reference temporal memory.
			maxC := 0.0
			for bb := range row {
				if c := d.smoothedAt(row, bb); c > maxC {
					maxC = c
				}
			}
			const predictedFrac = 0.2
			raw = 1 - math.Min(1, d.smoothedAt(row, b)/(predictedFrac*maxC))
		} else {
			raw = 1
		}
		// Learn after scoring, smearing mass onto neighboring buckets the
		// way overlapping SDR encodings would.
		d.smearAdd(row, b)
		d.totals[d.prevBucket]++
	}
	d.prevBucket = b
	d.havePrev = true

	d.raw = append(d.raw, raw)
	if len(d.raw) > d.cfg.LongWindow {
		d.raw = d.raw[1:]
	}
	d.seen++
	if d.seen <= d.cfg.Warmup || len(d.raw) < d.cfg.ShortWindow+2 {
		return 0
	}

	long := d.raw[:len(d.raw)-d.cfg.ShortWindow]
	short := d.raw[len(d.raw)-d.cfg.ShortWindow:]
	g := stats.FitGaussian(long)
	if g.Sigma < 1e-6 {
		g.Sigma = 1e-6
	}
	z := (stats.Mean(short) - g.Mu) / g.Sigma
	// One-sided Gaussian tail → likelihood that the recent raw scores are
	// anomalously high.
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// Detect runs the detector over a whole series, returning one likelihood
// per timestep.
func (d *Detector) Detect(series []float64) []float64 {
	out := make([]float64, len(series))
	for i, v := range series {
		out[i] = d.Step(v)
	}
	return out
}

// Threshold is the default alarm threshold. The paper alarms only on the
// maximum anomaly score (1.0) of the reference implementation, whose
// likelihood saturates far more readily than our smoothed Gaussian tail;
// calibrating against the published detection behaviour (≈40% true-alarm
// rate with tens of alarms over 11 executions) puts the equivalent cutoff
// at 0.8.
const Threshold = 0.8
