package htm

import (
	"math"
	"math/rand"
	"testing"
)

func TestScoresInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := New(Config{})
	for i := 0; i < 500; i++ {
		s := d.Step(rng.NormFloat64())
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score out of range: %v", s)
		}
	}
}

func TestWarmupScoresZero(t *testing.T) {
	d := New(Config{Warmup: 10})
	for i := 0; i < 10; i++ {
		if s := d.Step(float64(i)); s != 0 {
			t.Fatalf("warmup step %d scored %v", i, s)
		}
	}
}

func TestLearnedPeriodicPatternScoresLow(t *testing.T) {
	d := New(Config{Buckets: 20, Warmup: 40})
	period := []float64{1, 3, 5, 7, 5, 3}
	var last float64
	for i := 0; i < 600; i++ {
		last = d.Step(period[i%len(period)])
	}
	if last > 0.9 {
		t.Fatalf("well-learned pattern should not look anomalous: %v", last)
	}
}

func TestSuddenLevelShiftSpikesScore(t *testing.T) {
	d := New(Config{Buckets: 30, Warmup: 20, ShortWindow: 3, LongWindow: 100})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		d.Step(10 + rng.NormFloat64()*0.2)
	}
	// Push the range out first so the shift lands in fresh buckets.
	peak := 0.0
	for i := 0; i < 10; i++ {
		s := d.Step(25 + rng.NormFloat64()*0.2)
		if s > peak {
			peak = s
		}
	}
	if peak < 0.9 {
		t.Fatalf("level shift should spike the likelihood, peak=%v", peak)
	}
}

func TestDetectLengthAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	series := make([]float64, 200)
	for i := range series {
		series[i] = math.Sin(float64(i)/5) + rng.NormFloat64()*0.05
	}
	a := New(Config{}).Detect(series)
	b := New(Config{}).Detect(series)
	if len(a) != len(series) {
		t.Fatalf("Detect length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("detector must be deterministic")
		}
	}
}

func TestConstantSeries(t *testing.T) {
	d := New(Config{})
	for i := 0; i < 200; i++ {
		s := d.Step(5)
		if math.IsNaN(s) {
			t.Fatalf("NaN score on constant input")
		}
	}
}

func TestDefaultsAppliedForZeroConfig(t *testing.T) {
	d := New(Config{})
	def := DefaultConfig()
	if d.cfg.Buckets != def.Buckets || d.cfg.LongWindow != def.LongWindow {
		t.Fatalf("defaults not applied: %+v", d.cfg)
	}
}

func TestAdaptiveRangeExpansion(t *testing.T) {
	d := New(Config{Buckets: 10})
	d.Step(0)
	d.Step(1)
	if d.min != 0 || d.max != 1 {
		t.Fatalf("range wrong: [%v,%v]", d.min, d.max)
	}
	d.Step(-5)
	d.Step(10)
	if d.min != -5 || d.max != 10 {
		t.Fatalf("range should expand: [%v,%v]", d.min, d.max)
	}
	if b := d.bucket(10); b != 9 {
		t.Fatalf("max value should land in last bucket, got %d", b)
	}
}

func TestRangeFreezesAfterWarmup(t *testing.T) {
	d := New(Config{Buckets: 10, Warmup: 5})
	for i := 0; i < 6; i++ {
		d.Step(float64(i)) // range adapts over [0,5] then freezes with margin
	}
	if !d.frozen {
		t.Fatalf("range should freeze after warmup")
	}
	frozenMin, frozenMax := d.min, d.max
	d.Step(1000)
	if d.min != frozenMin || d.max != frozenMax {
		t.Fatalf("frozen range must not move")
	}
	if b := d.bucket(1000); b != 9 {
		t.Fatalf("out-of-range value should clip to last bucket, got %d", b)
	}
	if b := d.bucket(-1000); b != 0 {
		t.Fatalf("out-of-range value should clip to first bucket, got %d", b)
	}
}

func TestThresholdConstant(t *testing.T) {
	if Threshold <= 0.5 || Threshold >= 1 {
		t.Fatalf("Threshold should sit in the saturation region below 1: %v", Threshold)
	}
}
