// The float32 serving path: a frozen, load-time-converted copy of the
// network that runs the fused forward pass in single precision.
//
// Unlike Predictor — which reads the live float64 layer weights on every
// call and therefore tracks optimizer steps — a Predictor32 snapshots the
// weights ONCE at construction, rounding each matrix to float32 and packing
// the GRU's input-side [Wz|Wr|Wh] and recurrent [Uz|Ur] blocks ahead of
// time. That is exactly the serving contract: bundles are immutable after
// load, so the conversion cost is paid once per model version and the hot
// loop touches half the memory the float64 path does. On amd64 the float32
// GEMMs additionally dispatch to 8-lane AVX2+FMA tiles (internal/tensor),
// which is where the ≥2× serving speedup comes from.
//
// Numerics: weights and arithmetic are float32, but the transcendentals
// (sigmoid's exp, tanh, attention's softmax) evaluate in float64 and round
// once, so each is accurate to one float32 ulp. End to end the path agrees
// with the float64 tape reference to ~1e-6 relative in practice; the parity
// battery in internal/core asserts a conservative 1e-4 — see
// docs/performance.md for the error budget.
package infer

import (
	"fmt"
	"math"
	"sync"

	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// dense32 is one converted dense layer: act(x·W + b).
type dense32 struct {
	w   *tensor.Matrix32
	b   []float32
	act nn.Activation
}

func newDense32(d *nn.Dense) dense32 {
	return dense32{w: d.W.Value32(), b: d.B.Value32().Data, act: d.Act}
}

// Predictor32 runs the fused forward pass in float32 over weights frozen at
// construction time. It is safe for concurrent use, and — because it never
// reads the source layers again — concurrent training of the originating
// model does not race with it. Rebuild one (NewPredictor32) to pick up new
// weights.
type Predictor32 struct {
	head Head

	fnn   dense32
	dense dense32

	gruH    int
	fw      *tensor.Matrix32 // In×3H packed [Wz|Wr|Wh]
	uzr     *tensor.Matrix32 // H×2H packed [Uz|Ur] — the fused recurrent block
	uh      *tensor.Matrix32
	bz      []float32
	br      []float32
	bh      []float32
	candAct nn.Activation

	tables   []*tensor.Matrix32
	embedDim int

	attnW *tensor.Matrix32 // nil when the model has no attention
	attnB []float32
	attnV []float32

	bilinear *tensor.Matrix32
	mlpH     dense32
	mlpO     dense32

	pool sync.Pool // of *arena32
}

// NewPredictor32 validates the network wiring and snapshots its weights
// into a float32 predictor. The conversion rounds every weight exactly
// once; later optimizer steps or restores on the source layers are NOT
// reflected — the float64 Predictor is the live-weight path.
func NewPredictor32(net Network) *Predictor32 {
	validateNetwork(net)
	g := net.GRU
	H := g.Hidden
	p := &Predictor32{
		head:    net.Head,
		fnn:     newDense32(net.FNNHidden),
		dense:   newDense32(net.Dense),
		gruH:    H,
		uh:      g.Uh.Value32(),
		bz:      g.Bz.Value32().Data,
		br:      g.Br.Value32().Data,
		bh:      g.Bh.Value32().Data,
		candAct: g.CandidateAct,
	}
	p.fw = tensor.New32(g.In, 3*H)
	wz, wr, wh := g.Wz.Value32(), g.Wr.Value32(), g.Wh.Value32()
	for i := 0; i < g.In; i++ {
		row := p.fw.Row(i)
		copy(row[:H], wz.Row(i))
		copy(row[H:2*H], wr.Row(i))
		copy(row[2*H:], wh.Row(i))
	}
	p.uzr = tensor.New32(H, 2*H)
	uz, ur := g.Uz.Value32(), g.Ur.Value32()
	for i := 0; i < H; i++ {
		row := p.uzr.Row(i)
		copy(row[:H], uz.Row(i))
		copy(row[H:], ur.Row(i))
	}
	p.embedDim = net.Embeddings[0].Dim
	for _, e := range net.Embeddings {
		p.tables = append(p.tables, e.Table.Value32())
	}
	if net.Attention != nil {
		p.attnW = net.Attention.W.Value32()
		p.attnB = net.Attention.B.Value32().Data
		p.attnV = net.Attention.V.Value32().Data
	}
	switch net.Head {
	case HeadBilinear:
		p.bilinear = net.Bilinear.To32()
	case HeadMLP:
		p.mlpH = newDense32(net.HeadMLP.Hidden)
		p.mlpO = newDense32(net.HeadMLP.Out)
	}
	p.pool.New = func() any { return &arena32{} }
	return p
}

// Predict returns one prediction per batch row.
func (p *Predictor32) Predict(b *nn.Batch) []float64 {
	out := make([]float64, b.X.Rows)
	p.PredictInto(out, b)
	return out
}

// PredictInto writes one prediction per batch row into out, which must be
// batch-sized. Inputs arrive and results leave as float64 — precision is an
// implementation detail of the bundle, invisible in the API — and the
// steady state allocates nothing.
func (p *Predictor32) PredictInto(out []float64, b *nn.Batch) {
	if b.Window == nil {
		panic("infer: batch has no RU-history window")
	}
	if len(b.EnvIDs) != len(p.tables) {
		panic(fmt.Sprintf("infer: batch has %d env id features, model wants %d", len(b.EnvIDs), len(p.tables)))
	}
	n := b.X.Rows
	if b.Window.Rows != n {
		panic(fmt.Sprintf("infer: window has %d rows for %d examples", b.Window.Rows, n))
	}
	if len(out) != n {
		panic(fmt.Sprintf("infer: out has %d slots for %d examples", len(out), n))
	}
	a := p.pool.Get().(*arena32)
	defer p.pool.Put(a)
	a.reset()

	vfs := denseForward32(a, p.fnn, a.from64(b.X))

	var vts *tensor.Matrix32
	if p.attnW != nil {
		_, states := p.gruWindow32(a, a.from64(b.Window), true)
		vts = p.attentionMix32(a, states)
	} else {
		vts, _ = p.gruWindow32(a, a.from64(b.Window), false)
	}

	vs := concatCols32(a, vts, vfs)
	vd := denseForward32(a, p.dense, vs)
	c := p.gatherEmbeddings32(a, b.EnvIDs, n)

	switch p.head {
	case HeadBilinear:
		vr := a.mat(n, p.bilinear.Cols)
		tensor.MatMulBlockedInto32(vr, vd, p.bilinear)
		rowDots32(out, vr, c)
	case HeadMLP:
		x := concatCols32(a, vd, c)
		y := denseForward32(a, p.mlpO, denseForward32(a, p.mlpH, x))
		for i, v := range y.Data {
			out[i] = float64(v)
		}
	default:
		rowDots32(out, vd, c)
	}
}

// gruWindow32 mirrors Predictor.gruWindow in float32. The recurrent z/r
// products use the pre-packed [Uz|Ur] block, so each step runs exactly two
// GEMMs: h·uzr and (r⊙h)·Uh.
func (p *Predictor32) gruWindow32(a *arena32, w *tensor.Matrix32, all bool) (*tensor.Matrix32, []*tensor.Matrix32) {
	n, T, H := w.Rows, w.Cols, p.gruH
	if T == 0 {
		panic("infer: window has no timesteps")
	}
	xall := a.header()
	xall.Rows, xall.Cols, xall.Data = n*T, 1, w.Data
	pre := a.mat(n*T, 3*H)
	tensor.MatMulBlockedInto32(pre, xall, p.fw)

	h := a.mat(n, H)
	h.Zero()
	ru := a.mat(n, H)
	ru2 := a.mat(n, 2*H)
	z := a.mat(n, H)
	r := a.mat(n, H)
	rh := a.mat(n, H)
	hc := a.mat(n, H)

	for t := 0; t < T; t++ {
		tensor.MatMulBlockedInto32(ru2, h, p.uzr)
		stride := pre.Cols
		for i := 0; i < n; i++ {
			prow := pre.Data[(i*T+t)*stride : (i*T+t)*stride+3*H]
			rrow := ru2.Row(i)
			zrow, rr := z.Row(i), r.Row(i)
			for j := 0; j < H; j++ {
				zrow[j] = sigmoid32(prow[j] + rrow[j] + p.bz[j])
			}
			for j := 0; j < H; j++ {
				rr[j] = sigmoid32(prow[H+j] + rrow[H+j] + p.br[j])
			}
		}
		tensor.MulInto32(rh, r, h)
		tensor.MatMulBlockedInto32(ru, rh, p.uh)
		for i := 0; i < n; i++ {
			prow := pre.Data[(i*T+t)*stride+2*H : (i*T+t)*stride+3*H]
			hrow, rrow := hc.Row(i), ru.Row(i)
			for j := 0; j < H; j++ {
				hrow[j] = prow[j] + rrow[j] + p.bh[j]
			}
		}
		applyAct32(hc, p.candAct)
		for i := range h.Data {
			h.Data[i] = (1-z.Data[i])*hc.Data[i] + z.Data[i]*h.Data[i]
		}
		if all {
			st := a.mat(n, H)
			copy(st.Data, h.Data)
			a.states = append(a.states, st)
		}
	}
	return h, a.states
}

// attentionMix32 mirrors attentionMix with float64 transcendentals.
func (p *Predictor32) attentionMix32(a *arena32, states []*tensor.Matrix32) *tensor.Matrix32 {
	n, H := states[0].Rows, states[0].Cols
	attn := p.attnW.Cols

	st := a.mat(n, attn)
	exps := a.mat(n, len(states))
	total := a.mat(n, 1)
	total.Zero()
	for t, ht := range states {
		tensor.MatMulBlockedInto32(st, ht, p.attnW)
		for i := 0; i < n; i++ {
			row := st.Row(i)
			s := 0.0
			for j := 0; j < attn; j++ {
				s += math.Tanh(float64(row[j]+p.attnB[j])) * float64(p.attnV[j])
			}
			e := float32(math.Exp(s))
			exps.Data[i*exps.Cols+t] = e
			total.Data[i] += e
		}
	}
	out := a.mat(n, H)
	out.Zero()
	for t, ht := range states {
		for i := 0; i < n; i++ {
			alpha := exps.Data[i*exps.Cols+t] * (1 / total.Data[i])
			hrow, orow := ht.Row(i), out.Row(i)
			for j := range orow {
				orow[j] += hrow[j] * alpha
			}
		}
	}
	return out
}

// gatherEmbeddings32 gathers from the frozen float32 tables with the same
// <unk> clamping as the float64 path.
func (p *Predictor32) gatherEmbeddings32(a *arena32, envIDs [][]int, n int) *tensor.Matrix32 {
	dim := p.embedDim
	c := a.mat(n, len(p.tables)*dim)
	for k, tbl := range p.tables {
		ids := envIDs[k]
		if len(ids) != n {
			panic(fmt.Sprintf("infer: env feature %d has %d ids for %d examples", k, len(ids), n))
		}
		lo := k * dim
		for i, id := range ids {
			if id < 0 || id >= tbl.Rows {
				id = nn.UnknownIndex
			}
			copy(c.Row(i)[lo:lo+dim], tbl.Row(id))
		}
	}
	return c
}

func denseForward32(a *arena32, d dense32, x *tensor.Matrix32) *tensor.Matrix32 {
	out := a.mat(x.Rows, d.w.Cols)
	tensor.MatMulBlockedInto32(out, x, d.w)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += d.b[j]
		}
	}
	applyAct32(out, d.act)
	return out
}

func concatCols32(a *arena32, l, r *tensor.Matrix32) *tensor.Matrix32 {
	out := a.mat(l.Rows, l.Cols+r.Cols)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		copy(row[:l.Cols], l.Row(i))
		copy(row[l.Cols:], r.Row(i))
	}
	return out
}

// rowDots32 writes the per-row inner product into the float64 result slice.
func rowDots32(out []float64, a, b *tensor.Matrix32) {
	for i := range out {
		arow, brow := a.Row(i), b.Row(i)
		var s float32
		for j, v := range arow {
			s += v * brow[j]
		}
		out[i] = float64(s)
	}
}

// sigmoid32 evaluates the logistic in float64 and rounds once, so it is
// accurate to one float32 ulp while the surrounding arithmetic stays f32.
func sigmoid32(x float32) float32 { return float32(1 / (1 + math.Exp(-float64(x)))) }

func applyAct32(m *tensor.Matrix32, act nn.Activation) {
	switch act {
	case nn.Linear:
	case nn.Sigmoid:
		for i, v := range m.Data {
			m.Data[i] = sigmoid32(v)
		}
	case nn.Tanh:
		for i, v := range m.Data {
			m.Data[i] = float32(math.Tanh(float64(v)))
		}
	case nn.ReLU:
		for i, v := range m.Data {
			if v < 0 {
				m.Data[i] = 0
			}
		}
	default:
		panic(fmt.Sprintf("infer: unknown activation %d", int(act)))
	}
}
