// Benchmarks and allocation tests comparing the fused tape-free forward
// path against the inference-tape reference. They live in an external test
// package so they can assemble real core.Model instances without creating
// an import cycle (core imports infer; test binaries may import both).
//
// Run with:
//
//	go test -bench 'Forward(Tape|Infer)' -benchmem ./internal/infer/
package infer_test

import (
	"fmt"
	"math/rand"
	"testing"

	"env2vec/internal/core"
	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// benchModel builds the paper-sized Env2Vec network (64 FNN units, 32 GRU
// units, embedding dim 10) over a window-20 RU history.
func benchModel(window int) (*core.Model, *envmeta.Schema) {
	schema := envmeta.NewSchema()
	for i := 0; i < 4; i++ {
		schema.Observe(envmeta.Environment{
			Testbed:  fmt.Sprintf("tb%d", i),
			SUT:      fmt.Sprintf("sut%d", i),
			Testcase: fmt.Sprintf("tc%d", i),
			Build:    fmt.Sprintf("b%d", i),
		})
	}
	cfg := core.Config{In: 8, Hidden: 64, GRUHidden: 32, EmbedDim: 10, Window: window, Seed: 1}
	return core.New(cfg, schema), schema
}

func benchBatch(rng *rand.Rand, schema *envmeta.Schema, n, in, window int) *nn.Batch {
	sizes := schema.Sizes()
	b := &nn.Batch{
		X:      tensor.New(n, in),
		Window: tensor.New(n, window),
		Y:      tensor.New(n, 1),
		EnvIDs: make([][]int, envmeta.NumFeatures),
	}
	b.X.RandNormal(rng, 1)
	b.Window.RandNormal(rng, 1)
	for k := range b.EnvIDs {
		b.EnvIDs[k] = make([]int, n)
		for i := range b.EnvIDs[k] {
			b.EnvIDs[k][i] = rng.Intn(sizes[k] + 1)
		}
	}
	return b
}

// TestInferAllocations asserts the headline property: steady-state fused
// prediction allocates a small constant (the returned slice plus pool
// bookkeeping), at least 4× below the tape path's per-op graph allocations.
// The bound is deliberately loose — GC can steal pooled arenas mid-run — but
// far tighter than the real gap (tape allocates thousands of objects here).
func TestInferAllocations(t *testing.T) {
	m, schema := benchModel(20)
	rng := rand.New(rand.NewSource(2))
	b := benchBatch(rng, schema, 8, 8, 20)
	m.Predict(b) // warm the arena pool

	inferAllocs := testing.AllocsPerRun(50, func() { m.Predict(b) })
	tapeAllocs := testing.AllocsPerRun(50, func() { m.PredictTape(b) })
	t.Logf("allocs/op: infer %.1f, tape %.1f", inferAllocs, tapeAllocs)
	if inferAllocs >= tapeAllocs/4 {
		t.Fatalf("fused path allocates %.1f/op vs tape %.1f/op; want ≥4× reduction", inferAllocs, tapeAllocs)
	}
}

func benchForward(b *testing.B, batch int, window int, predict func(m *core.Model, bt *nn.Batch) []float64) {
	m, schema := benchModel(window)
	rng := rand.New(rand.NewSource(2))
	bt := benchBatch(rng, schema, batch, 8, window)
	predict(m, bt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		predict(m, bt)
	}
}

func BenchmarkForwardTape_B8W20(b *testing.B) {
	benchForward(b, 8, 20, (*core.Model).PredictTape)
}

func BenchmarkForwardInfer_B8W20(b *testing.B) {
	benchForward(b, 8, 20, (*core.Model).Predict)
}

func BenchmarkForwardTape_B32W20(b *testing.B) {
	benchForward(b, 32, 20, (*core.Model).PredictTape)
}

func BenchmarkForwardInfer_B32W20(b *testing.B) {
	benchForward(b, 32, 20, (*core.Model).Predict)
}

// BenchmarkForwardInferParallel measures the serving steady state: many
// goroutines sharing one model, each drawing a private scratch arena from
// the pool.
func BenchmarkForwardInferParallel_B8W20(b *testing.B) {
	m, schema := benchModel(20)
	rng := rand.New(rand.NewSource(2))
	bt := benchBatch(rng, schema, 8, 8, 20)
	m.Predict(bt)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Predict(bt)
		}
	})
}
