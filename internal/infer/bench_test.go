// Benchmarks and allocation tests comparing the fused tape-free forward
// path against the inference-tape reference. They live in an external test
// package so they can assemble real core.Model instances without creating
// an import cycle (core imports infer; test binaries may import both).
//
// Run with:
//
//	go test -bench 'Forward(Tape|Infer)' -benchmem ./internal/infer/
package infer_test

import (
	"fmt"
	"math/rand"
	"testing"

	"env2vec/internal/core"
	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// benchModel builds the paper-sized Env2Vec network (64 FNN units, 32 GRU
// units, embedding dim 10) over a window-20 RU history.
func benchModel(window int) (*core.Model, *envmeta.Schema) {
	schema := envmeta.NewSchema()
	for i := 0; i < 4; i++ {
		schema.Observe(envmeta.Environment{
			Testbed:  fmt.Sprintf("tb%d", i),
			SUT:      fmt.Sprintf("sut%d", i),
			Testcase: fmt.Sprintf("tc%d", i),
			Build:    fmt.Sprintf("b%d", i),
		})
	}
	cfg := core.Config{In: 8, Hidden: 64, GRUHidden: 32, EmbedDim: 10, Window: window, Seed: 1}
	return core.New(cfg, schema), schema
}

func benchBatch(rng *rand.Rand, schema *envmeta.Schema, n, in, window int) *nn.Batch {
	sizes := schema.Sizes()
	b := &nn.Batch{
		X:      tensor.New(n, in),
		Window: tensor.New(n, window),
		Y:      tensor.New(n, 1),
		EnvIDs: make([][]int, envmeta.NumFeatures),
	}
	b.X.RandNormal(rng, 1)
	b.Window.RandNormal(rng, 1)
	for k := range b.EnvIDs {
		b.EnvIDs[k] = make([]int, n)
		for i := range b.EnvIDs[k] {
			b.EnvIDs[k][i] = rng.Intn(sizes[k] + 1)
		}
	}
	return b
}

// TestInferAllocations asserts the headline property: steady-state fused
// prediction allocates a small constant (the returned slice plus pool
// bookkeeping), at least 4× below the tape path's per-op graph allocations.
// The bound is deliberately loose — GC can steal pooled arenas mid-run — but
// far tighter than the real gap (tape allocates thousands of objects here).
func TestInferAllocations(t *testing.T) {
	m, schema := benchModel(20)
	rng := rand.New(rand.NewSource(2))
	b := benchBatch(rng, schema, 8, 8, 20)
	m.Predict(b) // warm the arena pool

	inferAllocs := testing.AllocsPerRun(50, func() { m.Predict(b) })
	tapeAllocs := testing.AllocsPerRun(50, func() { m.PredictTape(b) })
	t.Logf("allocs/op: infer %.1f, tape %.1f", inferAllocs, tapeAllocs)
	if inferAllocs >= tapeAllocs/4 {
		t.Fatalf("fused path allocates %.1f/op vs tape %.1f/op; want ≥4× reduction", inferAllocs, tapeAllocs)
	}
}

// TestInfer32Allocations holds the float32 path to the float64 path's
// allocation guarantees: Predict allocates exactly the returned slice (1
// alloc steady-state, with slack for GC stealing pooled arenas) and
// PredictInto allocates nothing. The input conversion to float32 must come
// from the arena, not the heap.
func TestInfer32Allocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; gate runs in the non-race pass")
	}
	m, schema := benchModel(20)
	p32 := m.NewPredictor32()
	rng := rand.New(rand.NewSource(2))
	b := benchBatch(rng, schema, 8, 8, 20)
	out := make([]float64, 8)
	p32.PredictInto(out, b) // warm the arena pool

	if a := testing.AllocsPerRun(100, func() { p32.Predict(b) }); a > 1.5 {
		t.Fatalf("float32 Predict allocates %.1f/op; want ≤1 (the result slice)", a)
	}
	if a := testing.AllocsPerRun(100, func() { p32.PredictInto(out, b) }); a > 0.5 {
		t.Fatalf("float32 PredictInto allocates %.1f/op; want 0", a)
	}
}

func benchForward(b *testing.B, batch int, window int, predict func(m *core.Model, bt *nn.Batch) []float64) {
	m, schema := benchModel(window)
	rng := rand.New(rand.NewSource(2))
	bt := benchBatch(rng, schema, batch, 8, window)
	predict(m, bt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		predict(m, bt)
	}
}

func BenchmarkForwardTape_B8W20(b *testing.B) {
	benchForward(b, 8, 20, (*core.Model).PredictTape)
}

func BenchmarkForwardInfer_B8W20(b *testing.B) {
	benchForward(b, 8, 20, (*core.Model).Predict)
}

func BenchmarkForwardTape_B32W20(b *testing.B) {
	benchForward(b, 32, 20, (*core.Model).PredictTape)
}

func BenchmarkForwardInfer_B32W20(b *testing.B) {
	benchForward(b, 32, 20, (*core.Model).Predict)
}

func benchForward32(b *testing.B, batch, window int) {
	m, schema := benchModel(window)
	p32 := m.NewPredictor32()
	rng := rand.New(rand.NewSource(2))
	bt := benchBatch(rng, schema, batch, 8, window)
	p32.Predict(bt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p32.Predict(bt)
	}
}

// BenchmarkForwardInfer32 is the float32 serving path: frozen converted
// weights, AVX2+FMA tiles on amd64. The committed BENCH_infer.json numbers
// for these are the ones the ≥2×-vs-float64 claim in docs/performance.md
// rests on.
func BenchmarkForwardInfer32_B8W20(b *testing.B) {
	benchForward32(b, 8, 20)
}

func BenchmarkForwardInfer32_B32W20(b *testing.B) {
	benchForward32(b, 32, 20)
}

// BenchmarkForwardInferParallel measures the serving steady state: many
// goroutines sharing one model, each drawing a private scratch arena from
// the pool.
func BenchmarkForwardInferParallel_B8W20(b *testing.B) {
	m, schema := benchModel(20)
	rng := rand.New(rand.NewSource(2))
	bt := benchBatch(rng, schema, 8, 8, 20)
	m.Predict(bt)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Predict(bt)
		}
	})
}
