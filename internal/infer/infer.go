// Package infer is the tape-free serving forward path. The autodiff tape in
// internal/autodiff is the right tool for training — every op records a
// backward closure — but the serving hot loop pays those training-time costs
// on every prediction: node and matrix allocations per op, per-timestep
// column slices of the RU window, and six small matmuls per GRU step. This
// package re-implements the Env2Vec forward pass as straight-line kernels:
//
//   - the input-side GRU gate contributions for the whole window are
//     precomputed in one shot — X·[Wz|Wr|Wh] is a single (batch·n)×in by
//     in×(3·hidden) MatMulInto (for the paper's scalar-RU windows the window
//     matrix reshapes into the step sequence without copying, and the matmul
//     degenerates to an outer product) — leaving only the recurrent h·U*
//     matmuls inside the sequential loop;
//   - every temporary comes from a per-pass scratch arena recycled through a
//     sync.Pool, so steady-state prediction does no heap allocation beyond
//     the returned slice;
//   - bias addition and activations fuse into the loops that consume them.
//
// The arithmetic replicates the tape path operation-for-operation in the
// same order, so the two paths agree to float64 round-off (the parity tests
// in internal/core assert far tighter than the documented 1e-9). The tape
// path remains the reference implementation: training and gradient checks
// use it, and core.Model.PredictTape keeps it callable for parity testing.
//
// Weights are read live from the layer parameters on every pass — nothing
// weight-derived is cached — so a Predictor stays correct across optimizer
// steps and snapshot restores, and any number of goroutines may predict
// concurrently over a shared model.
package infer

import (
	"fmt"
	"math"
	"sync"

	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// Head selects how dense features and the environment embedding combine,
// mirroring the heads in internal/core.
type Head int

// Prediction heads.
const (
	HeadHadamard Head = iota // y′ = Σ (v_d ⊙ C)
	HeadBilinear             // y′ = v_d · R · C
	HeadMLP                  // y′ = MLP([v_d, C])
)

// Network references the layers of an assembled Env2Vec model. The Predictor
// reads weights through these references at call time, so the caller may
// keep training or restoring the same layers without rebuilding anything.
type Network struct {
	FNNHidden  *nn.Dense       // contextual tower hidden layer → v_fs
	GRU        *nn.GRU         // scalar-input GRU over the RU window → v_ts
	Dense      *nn.Dense       // [v_ts | v_fs] → v_d
	Embeddings []*nn.Embedding // per-feature environment tables → C
	Attention  *nn.Attention   // optional mixture over all GRU states
	Head       Head
	Bilinear   *tensor.Matrix // R, required when Head == HeadBilinear
	HeadMLP    *nn.MLP        // required when Head == HeadMLP
}

// Predictor runs the fused forward pass. Create once per model with
// NewPredictor; it is safe for concurrent use.
type Predictor struct {
	net  Network
	pool sync.Pool // of *arena
}

// NewPredictor validates the network wiring and returns a ready predictor.
func NewPredictor(net Network) *Predictor {
	validateNetwork(net)
	p := &Predictor{net: net}
	p.pool.New = func() any { return &arena{} }
	return p
}

// validateNetwork checks the wiring shared by both precision paths.
func validateNetwork(net Network) {
	if net.FNNHidden == nil || net.GRU == nil || net.Dense == nil {
		panic("infer: network is missing a layer")
	}
	if net.GRU.In != 1 {
		panic("infer: the fused window kernel requires a GRU with scalar inputs")
	}
	if len(net.Embeddings) == 0 {
		panic("infer: network has no embedding tables")
	}
	switch net.Head {
	case HeadHadamard:
	case HeadBilinear:
		if net.Bilinear == nil {
			panic("infer: bilinear head without R matrix")
		}
	case HeadMLP:
		if net.HeadMLP == nil {
			panic("infer: MLP head without its MLP")
		}
	default:
		panic(fmt.Sprintf("infer: unknown prediction head %d", int(net.Head)))
	}
}

// Predict returns one prediction per batch row.
func (p *Predictor) Predict(b *nn.Batch) []float64 {
	out := make([]float64, b.X.Rows)
	p.PredictInto(out, b)
	return out
}

// PredictInto writes one prediction per batch row into out, which must be
// batch-sized. This is the zero-allocation entry point for callers that
// manage their own result storage.
func (p *Predictor) PredictInto(out []float64, b *nn.Batch) {
	if b.Window == nil {
		panic("infer: batch has no RU-history window")
	}
	if len(b.EnvIDs) != len(p.net.Embeddings) {
		panic(fmt.Sprintf("infer: batch has %d env id features, model wants %d", len(b.EnvIDs), len(p.net.Embeddings)))
	}
	n := b.X.Rows
	if b.Window.Rows != n {
		panic(fmt.Sprintf("infer: window has %d rows for %d examples", b.Window.Rows, n))
	}
	if len(out) != n {
		panic(fmt.Sprintf("infer: out has %d slots for %d examples", len(out), n))
	}
	a := p.pool.Get().(*arena)
	defer p.pool.Put(a)
	a.reset()

	vfs := denseForward(a, p.net.FNNHidden, b.X)

	var vts *tensor.Matrix
	if p.net.Attention != nil {
		_, states := p.gruWindow(a, b.Window, true)
		vts = attentionMix(a, p.net.Attention, states)
	} else {
		vts, _ = p.gruWindow(a, b.Window, false)
	}

	vs := concatCols(a, vts, vfs)
	vd := denseForward(a, p.net.Dense, vs)
	c := p.gatherEmbeddings(a, b.EnvIDs, n)

	switch p.net.Head {
	case HeadBilinear:
		vr := a.mat(n, p.net.Bilinear.Cols)
		tensor.MatMulBlockedInto(vr, vd, p.net.Bilinear)
		rowDots(out, vr, c)
	case HeadMLP:
		x := concatCols(a, vd, c)
		y := denseForward(a, p.net.HeadMLP.Out, denseForward(a, p.net.HeadMLP.Hidden, x))
		copy(out, y.Data)
	default:
		rowDots(out, vd, c)
	}
}

// gruWindow runs the fused GRU over a batch×T scalar window, returning the
// final hidden state and, when all is set, every step's state (arena-owned).
func (p *Predictor) gruWindow(a *arena, w *tensor.Matrix, all bool) (*tensor.Matrix, []*tensor.Matrix) {
	g := p.net.GRU
	n, T, H := w.Rows, w.Cols, g.Hidden
	if T == 0 {
		panic("infer: window has no timesteps")
	}

	// Input-side gate contributions for the whole window in one shot. The
	// row-major batch×T window IS the (batch·T)×1 step-input matrix, so the
	// reshape is free, and [Wz|Wr|Wh] packs into one 1×3H row. Row i·T+t of
	// pre then holds [x·Wz | x·Wr | x·Wh] for example i at step t.
	fw := a.mat(g.In, 3*H)
	for i := 0; i < g.In; i++ {
		row := fw.Row(i)
		copy(row[:H], g.Wz.Value.Row(i))
		copy(row[H:2*H], g.Wr.Value.Row(i))
		copy(row[2*H:], g.Wh.Value.Row(i))
	}
	xall := a.view(n*T, 1, w.Data)
	pre := a.mat(n*T, 3*H)
	tensor.MatMulBlockedInto(pre, xall, fw)

	h := a.mat(n, H)
	h.Zero()
	ru := a.mat(n, H)    // candidate recurrent matmul scratch
	ru2 := a.mat(n, 2*H) // fused z|r recurrent matmul scratch
	z := a.mat(n, H)
	r := a.mat(n, H)
	rh := a.mat(n, H)
	hc := a.mat(n, H)
	bz, br, bh := g.Bz.Value.Data, g.Br.Value.Data, g.Bh.Value.Data

	for t := 0; t < T; t++ {
		// z = σ(x·Wz + h·Uz + bz) and r = σ(x·Wr + h·Ur + br): both gates
		// multiply the same h, so one fused kernel computes h·[Uz|Ur] and
		// one pass applies biases and sigmoids to both.
		tensor.MatMulPairInto(ru2, h, g.Uz.Value, g.Ur.Value)
		gateRows2(z, r, pre, ru2, bz, br, t, T, H)
		// h' = act(x·Wh + (r ⊙ h)·Uh + bh)
		tensor.MulInto(rh, r, h)
		tensor.MatMulBlockedInto(ru, rh, g.Uh.Value)
		gateRows(hc, pre, ru, bh, t, T, 2*H, H, false)
		applyAct(hc, g.CandidateAct)
		// h = (1−z) ⊙ h' + z ⊙ h, elementwise so updating in place is safe.
		for i := range h.Data {
			h.Data[i] = (1-z.Data[i])*hc.Data[i] + z.Data[i]*h.Data[i]
		}
		if all {
			st := a.mat(n, H)
			copy(st.Data, h.Data)
			a.states = append(a.states, st)
		}
	}
	return h, a.states
}

// gateRows computes dst = pre[·, off:off+width at step t] + ru + bias, with
// the same (input + recurrent) + bias association the tape path uses, and
// optionally applies the sigmoid in the same pass.
func gateRows(dst, pre, ru *tensor.Matrix, bias []float64, t, T, off, width int, sig bool) {
	stride := pre.Cols
	for i := 0; i < dst.Rows; i++ {
		prow := pre.Data[(i*T+t)*stride+off:]
		drow, rrow := dst.Row(i), ru.Row(i)
		if sig {
			for j := 0; j < width; j++ {
				drow[j] = sigmoid(prow[j] + rrow[j] + bias[j])
			}
		} else {
			for j := 0; j < width; j++ {
				drow[j] = prow[j] + rrow[j] + bias[j]
			}
		}
	}
}

// gateRows2 applies both update-gate and reset-gate rows in one pass over
// the fused recurrent product: ru2's left H columns hold h·Uz, its right H
// columns h·Ur (see tensor.MatMulPairInto). Per element the association is
// identical to two gateRows calls: (input + recurrent) + bias, then σ.
func gateRows2(z, r, pre, ru2 *tensor.Matrix, bz, br []float64, t, T, H int) {
	stride := pre.Cols
	for i := 0; i < z.Rows; i++ {
		prow := pre.Data[(i*T+t)*stride : (i*T+t)*stride+2*H]
		rrow := ru2.Row(i)
		zrow, rr := z.Row(i), r.Row(i)
		for j := 0; j < H; j++ {
			zrow[j] = sigmoid(prow[j] + rrow[j] + bz[j])
		}
		for j := 0; j < H; j++ {
			rr[j] = sigmoid(prow[H+j] + rrow[H+j] + br[j])
		}
	}
}

// attentionMix replicates nn.Attention.Forward: additive scores, an exp/sum
// softmax accumulated in step order, and the weighted state mixture.
func attentionMix(a *arena, at *nn.Attention, states []*tensor.Matrix) *tensor.Matrix {
	n, H := states[0].Rows, states[0].Cols
	attn := at.W.Value.Cols
	bias, v := at.B.Value.Data, at.V.Value.Data

	st := a.mat(n, attn)
	exps := a.mat(n, len(states)) // exps[i][t] = exp(score of state t, row i)
	total := a.mat(n, 1)
	total.Zero()
	for t, ht := range states {
		tensor.MatMulBlockedInto(st, ht, at.W.Value)
		for i := 0; i < n; i++ {
			row := st.Row(i)
			s := 0.0
			for j := 0; j < attn; j++ {
				s += math.Tanh(row[j]+bias[j]) * v[j]
			}
			e := math.Exp(s)
			exps.Set(i, t, e)
			total.Data[i] += e
		}
	}
	out := a.mat(n, H)
	out.Zero()
	for t, ht := range states {
		for i := 0; i < n; i++ {
			alpha := exps.At(i, t) * (1 / total.Data[i])
			hrow, orow := ht.Row(i), out.Row(i)
			for j := range orow {
				orow[j] += hrow[j] * alpha
			}
		}
	}
	return out
}

// gatherEmbeddings fuses the per-feature table gathers and the column
// concatenation of Equation 1 into direct row copies, clamping unseen or
// out-of-range ids to the <unk> row exactly like nn.Embedding.Forward.
func (p *Predictor) gatherEmbeddings(a *arena, envIDs [][]int, n int) *tensor.Matrix {
	dim := p.net.Embeddings[0].Dim
	c := a.mat(n, len(p.net.Embeddings)*dim)
	for k, emb := range p.net.Embeddings {
		tbl := emb.Table.Value
		ids := envIDs[k]
		if len(ids) != n {
			panic(fmt.Sprintf("infer: env feature %d has %d ids for %d examples", k, len(ids), n))
		}
		lo := k * dim
		for i, id := range ids {
			if id < 0 || id >= tbl.Rows {
				id = nn.UnknownIndex
			}
			copy(c.Row(i)[lo:lo+dim], tbl.Row(id))
		}
	}
	return c
}

// denseForward is act(x·W + b) with the bias fold and activation fused into
// one pass over the output.
func denseForward(a *arena, d *nn.Dense, x *tensor.Matrix) *tensor.Matrix {
	out := a.mat(x.Rows, d.W.Value.Cols)
	tensor.MatMulBlockedInto(out, x, d.W.Value)
	bias := d.B.Value.Data
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
	applyAct(out, d.Act)
	return out
}

func concatCols(a *arena, l, r *tensor.Matrix) *tensor.Matrix {
	out := a.mat(l.Rows, l.Cols+r.Cols)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		copy(row[:l.Cols], l.Row(i))
		copy(row[l.Cols:], r.Row(i))
	}
	return out
}

// rowDots writes the per-row inner product of two equal-shape matrices —
// SumRows(Mul(a, b)) without the intermediate.
func rowDots(out []float64, a, b *tensor.Matrix) {
	for i := range out {
		arow, brow := a.Row(i), b.Row(i)
		s := 0.0
		for j, v := range arow {
			s += v * brow[j]
		}
		out[i] = s
	}
}

// sigmoid matches the autodiff tape's formulation exactly.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func applyAct(m *tensor.Matrix, act nn.Activation) {
	switch act {
	case nn.Linear:
	case nn.Sigmoid:
		for i, v := range m.Data {
			m.Data[i] = sigmoid(v)
		}
	case nn.Tanh:
		for i, v := range m.Data {
			m.Data[i] = math.Tanh(v)
		}
	case nn.ReLU:
		for i, v := range m.Data {
			if v < 0 {
				m.Data[i] = 0
			}
		}
	default:
		panic(fmt.Sprintf("infer: unknown activation %d", int(act)))
	}
}
