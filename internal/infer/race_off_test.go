//go:build !race

package infer_test

const raceEnabled = false
