package infer

import (
	"testing"
	"unsafe"
)

// overlaps reports whether two float64 slices share any backing elements.
func overlaps(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	const sz = unsafe.Sizeof(float64(0))
	alo := uintptr(unsafe.Pointer(&a[0]))
	blo := uintptr(unsafe.Pointer(&b[0]))
	return alo < blo+uintptr(len(b))*sz && blo < alo+uintptr(len(a))*sz
}

func TestArenaViewsDisjoint(t *testing.T) {
	a := &arena{}
	a.reset()
	// Mix of sizes, including one larger than a chunk so growth paths run.
	shapes := [][2]int{{4, 8}, {1, 1}, {100, 50}, {3, 3}, {64, 70}, {2, arenaChunk}}
	mats := make([][]float64, 0, len(shapes))
	for _, s := range shapes {
		m := a.mat(s[0], s[1])
		if m.Rows != s[0] || m.Cols != s[1] || len(m.Data) != s[0]*s[1] {
			t.Fatalf("mat(%d,%d) has shape %dx%d len %d", s[0], s[1], m.Rows, m.Cols, len(m.Data))
		}
		for i := range m.Data {
			m.Data[i] = float64(len(mats))
		}
		mats = append(mats, m.Data)
	}
	for i := range mats {
		for j := i + 1; j < len(mats); j++ {
			if overlaps(mats[i], mats[j]) {
				t.Fatalf("views %d and %d share storage", i, j)
			}
		}
		for _, v := range mats[i] {
			if v != float64(i) {
				t.Fatalf("view %d was overwritten by a later carve", i)
			}
		}
	}
}

func TestArenaResetReuses(t *testing.T) {
	a := &arena{}
	carve := func() {
		a.reset()
		a.mat(8, 8)
		a.mat(100, 50)
		a.mat(2, arenaChunk)
		a.view(4, 2, make([]float64, 8))
	}
	carve()
	chunks, headers := len(a.chunks), len(a.mats)
	for i := 0; i < 10; i++ {
		carve()
	}
	if len(a.chunks) != chunks {
		t.Fatalf("steady-state carving grew chunks %d → %d", chunks, len(a.chunks))
	}
	if len(a.mats) != headers {
		t.Fatalf("steady-state carving grew headers %d → %d", headers, len(a.mats))
	}
}
