package infer

import "env2vec/internal/tensor"

// arena32 is the float32 twin of arena: a chunked bump allocator over
// []float32 backing storage plus recycled Matrix32 headers. The float32
// predictor additionally carves its converted input copies (X and the RU
// window arrive as float64) from here, so steady-state float32 prediction
// keeps the same 1-alloc/0-alloc profile as the float64 path.
//
// Arenas are NOT safe for concurrent use; the Predictor32 hands each
// forward pass a private one from a sync.Pool.
type arena32 struct {
	chunks [][]float32
	chunk  int
	off    int

	mats []*tensor.Matrix32
	used int

	states []*tensor.Matrix32
}

// reset rewinds the arena; previously carved views become dead.
func (a *arena32) reset() {
	a.chunk, a.off, a.used = 0, 0, 0
	a.states = a.states[:0]
}

func (a *arena32) header() *tensor.Matrix32 {
	if a.used < len(a.mats) {
		m := a.mats[a.used]
		a.used++
		return m
	}
	m := &tensor.Matrix32{}
	a.mats = append(a.mats, m)
	a.used++
	return m
}

// mat carves an uninitialized rows×cols matrix view. Callers must fully
// overwrite it (or Zero it) before reading.
func (a *arena32) mat(rows, cols int) *tensor.Matrix32 {
	need := rows * cols
	for {
		if a.chunk < len(a.chunks) {
			c := a.chunks[a.chunk]
			if a.off+need <= len(c) {
				m := a.header()
				m.Rows, m.Cols, m.Data = rows, cols, c[a.off:a.off+need:a.off+need]
				a.off += need
				return m
			}
			a.chunk++
			a.off = 0
			continue
		}
		size := need
		if size < arenaChunk {
			size = arenaChunk
		}
		a.chunks = append(a.chunks, make([]float32, size))
	}
}

// from64 carves a matrix and fills it with the float32 rounding of src —
// the per-call input conversion of the float32 serving path.
func (a *arena32) from64(src *tensor.Matrix) *tensor.Matrix32 {
	m := a.mat(src.Rows, src.Cols)
	for i, v := range src.Data {
		m.Data[i] = float32(v)
	}
	return m
}
