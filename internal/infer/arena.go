package infer

import "env2vec/internal/tensor"

// arena is a per-forward-pass scratch allocator: a chunked bump allocator
// over []float64 backing storage plus a recycled pool of Matrix headers.
// Views carved from it are valid until the next reset, so one forward pass
// owns the whole arena and steady-state prediction allocates nothing — the
// chunks and headers grown on the first pass at a given batch size are
// reused by every later pass.
//
// Arenas are NOT safe for concurrent use; the Predictor hands each forward
// pass a private one from a sync.Pool.
type arena struct {
	chunks [][]float64
	chunk  int // chunk currently being carved
	off    int // carve offset inside chunks[chunk]

	mats []*tensor.Matrix // recycled headers
	used int

	states []*tensor.Matrix // recycled per-step hidden-state list (attention)
}

// arenaChunk is the minimum chunk size; large requests get their own chunk.
const arenaChunk = 4096

// reset rewinds the arena; previously carved views become dead.
func (a *arena) reset() {
	a.chunk, a.off, a.used = 0, 0, 0
	a.states = a.states[:0]
}

func (a *arena) header() *tensor.Matrix {
	if a.used < len(a.mats) {
		m := a.mats[a.used]
		a.used++
		return m
	}
	m := &tensor.Matrix{}
	a.mats = append(a.mats, m)
	a.used++
	return m
}

// mat carves an uninitialized rows×cols matrix view. Callers must fully
// overwrite it (or Zero it) before reading.
func (a *arena) mat(rows, cols int) *tensor.Matrix {
	need := rows * cols
	for {
		if a.chunk < len(a.chunks) {
			c := a.chunks[a.chunk]
			if a.off+need <= len(c) {
				m := a.header()
				m.Rows, m.Cols, m.Data = rows, cols, c[a.off:a.off+need:a.off+need]
				a.off += need
				return m
			}
			// Doesn't fit here; leave the remainder and move on. The skipped
			// tail is reclaimed by the next reset.
			a.chunk++
			a.off = 0
			continue
		}
		size := need
		if size < arenaChunk {
			size = arenaChunk
		}
		a.chunks = append(a.chunks, make([]float64, size))
	}
}

// view wraps existing storage in a recycled header without copying — used to
// reinterpret a batch×n window as a (batch·n)×1 step sequence.
func (a *arena) view(rows, cols int, data []float64) *tensor.Matrix {
	m := a.header()
	m.Rows, m.Cols, m.Data = rows, cols, data
	return m
}
