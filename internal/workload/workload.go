// Package workload provides the traffic and load models used by the
// synthetic data generators: daily load curves (the paper's "typical daily
// load curve" traffic model), self-similar bursty traffic (the
// "self-similar" traffic model from Table 1), surge form factors, and an
// AR(1) noise process for resource-usage dynamics.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// DailyCurve returns a smooth diurnal load multiplier in [low, high] for a
// time-of-day fraction tod ∈ [0,1): low demand at night, peaking in the
// afternoon.
func DailyCurve(tod, low, high float64) float64 {
	// Peak at 15:00 (tod ≈ 0.625).
	phase := 2 * math.Pi * (tod - 0.625)
	return low + (high-low)*(0.5+0.5*math.Cos(phase))
}

// SelfSimilar generates n samples of bursty, approximately self-similar
// traffic using the multiscale b-model (biased cascade): total volume is
// recursively split with bias b, producing burstiness across time scales.
// The output is normalized to mean 1.
func SelfSimilar(rng *rand.Rand, n int, bias float64) []float64 {
	if bias <= 0.5 || bias >= 1 {
		panic(fmt.Sprintf("workload: self-similar bias %v must be in (0.5,1)", bias))
	}
	// Build at the next power of two and truncate.
	size := 1
	for size < n {
		size *= 2
	}
	out := make([]float64, size)
	out[0] = float64(size)
	for width := size; width > 1; width /= 2 {
		for start := 0; start < size; start += width {
			v := out[start]
			left := bias
			if rng.Float64() < 0.5 {
				left = 1 - bias
			}
			out[start] = v * left
			out[start+width/2] = v * (1 - left)
		}
	}
	return out[:n]
}

// Surge produces a baseline-1 load with occasional multiplicative surges of
// the given magnitude and duration (in samples); prob is the per-sample
// probability of a surge starting.
func Surge(rng *rand.Rand, n int, prob, magnitude float64, duration int) []float64 {
	out := make([]float64, n)
	remaining := 0
	for i := range out {
		if remaining == 0 && rng.Float64() < prob {
			remaining = duration
		}
		if remaining > 0 {
			out[i] = magnitude
			remaining--
		} else {
			out[i] = 1
		}
	}
	return out
}

// AR1 is a first-order autoregressive process x_t = phi·x_{t−1} + ε,
// ε ~ N(0, std²), used for temporally correlated noise in RU series.
type AR1 struct {
	Phi, Std float64
	state    float64
}

// Next advances the process and returns the new value.
func (a *AR1) Next(rng *rand.Rand) float64 {
	a.state = a.Phi*a.state + rng.NormFloat64()*a.Std
	return a.state
}

// Series generates n consecutive AR(1) samples.
func (a *AR1) Series(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = a.Next(rng)
	}
	return out
}

// TrafficModel names the test-case traffic shapes from Table 1.
type TrafficModel int

// Supported traffic models.
const (
	ModelDaily TrafficModel = iota
	ModelSelfSimilar
	ModelSurge
	ModelConstant
)

// String implements fmt.Stringer.
func (m TrafficModel) String() string {
	switch m {
	case ModelDaily:
		return "daily"
	case ModelSelfSimilar:
		return "self-similar"
	case ModelSurge:
		return "surge"
	case ModelConstant:
		return "constant"
	}
	return fmt.Sprintf("TrafficModel(%d)", int(m))
}

// Generate produces n samples of normalized load (mean ≈ 1) for the model.
// stepsPerDay controls the diurnal period for ModelDaily.
func (m TrafficModel) Generate(rng *rand.Rand, n, stepsPerDay int) []float64 {
	switch m {
	case ModelDaily:
		out := make([]float64, n)
		for i := range out {
			tod := float64(i%stepsPerDay) / float64(stepsPerDay)
			out[i] = DailyCurve(tod, 0.4, 1.6) * (1 + rng.NormFloat64()*0.05)
		}
		return out
	case ModelSelfSimilar:
		out := SelfSimilar(rng, n, 0.72)
		for i := range out {
			if out[i] < 0.05 {
				out[i] = 0.05
			}
		}
		return out
	case ModelSurge:
		return Surge(rng, n, 0.02, 2.5, stepsPerDay/12+1)
	case ModelConstant:
		out := make([]float64, n)
		for i := range out {
			out[i] = 1 + rng.NormFloat64()*0.03
		}
		return out
	}
	panic(fmt.Sprintf("workload: unknown traffic model %d", int(m)))
}
