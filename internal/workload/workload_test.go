package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDailyCurveBoundsAndPeak(t *testing.T) {
	maxV, maxTod := -1.0, 0.0
	for tod := 0.0; tod < 1; tod += 0.001 {
		v := DailyCurve(tod, 0.4, 1.6)
		if v < 0.4-1e-9 || v > 1.6+1e-9 {
			t.Fatalf("curve out of bounds at %v: %v", tod, v)
		}
		if v > maxV {
			maxV, maxTod = v, tod
		}
	}
	if math.Abs(maxTod-0.625) > 0.01 {
		t.Fatalf("peak should be near 0.625, got %v", maxTod)
	}
}

func TestSelfSimilarConservesMassAndIsBursty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 256
	xs := SelfSimilar(rng, n, 0.75)
	if len(xs) != n {
		t.Fatalf("length wrong")
	}
	mean := 0.0
	for _, x := range xs {
		if x < 0 {
			t.Fatalf("negative traffic: %v", x)
		}
		mean += x
	}
	mean /= float64(n)
	if math.Abs(mean-1) > 1e-9 {
		t.Fatalf("b-model must conserve mass (mean 1), got %v", mean)
	}
	// Burstiness: coefficient of variation should be well above a
	// uniform split.
	varr := 0.0
	for _, x := range xs {
		varr += (x - mean) * (x - mean)
	}
	cv := math.Sqrt(varr/float64(n)) / mean
	if cv < 0.5 {
		t.Fatalf("traffic not bursty enough: cv=%v", cv)
	}
}

func TestSelfSimilarTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := SelfSimilar(rng, 100, 0.7) // not a power of two
	if len(xs) != 100 {
		t.Fatalf("length %d", len(xs))
	}
}

func TestSelfSimilarBiasPanics(t *testing.T) {
	for _, bad := range []float64{0.5, 1.0, 0.2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bias %v should panic", bad)
				}
			}()
			SelfSimilar(rand.New(rand.NewSource(1)), 8, bad)
		}()
	}
}

func TestSurge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := Surge(rng, 2000, 0.05, 3, 4)
	surged, base := 0, 0
	for _, x := range xs {
		switch x {
		case 3:
			surged++
		case 1:
			base++
		default:
			t.Fatalf("unexpected value %v", x)
		}
	}
	if surged == 0 || base == 0 {
		t.Fatalf("expected a mix of surge and baseline, got %d/%d", surged, base)
	}
}

func TestAR1Stationarity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := &AR1{Phi: 0.9, Std: 1}
	xs := a.Series(rng, 20000)
	mean, varr := 0.0, 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		varr += (x - mean) * (x - mean)
	}
	varr /= float64(len(xs))
	// Stationary variance is std²/(1−phi²) ≈ 5.26.
	want := 1 / (1 - 0.81)
	if math.Abs(mean) > 0.3 || math.Abs(varr-want) > want*0.25 {
		t.Fatalf("AR1 stats off: mean=%v var=%v want var≈%v", mean, varr, want)
	}
}

func TestAR1Autocorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := &AR1{Phi: 0.8, Std: 1}
	xs := a.Series(rng, 30000)
	num, den := 0.0, 0.0
	for i := 1; i < len(xs); i++ {
		num += xs[i] * xs[i-1]
		den += xs[i-1] * xs[i-1]
	}
	if rho := num / den; math.Abs(rho-0.8) > 0.05 {
		t.Fatalf("lag-1 autocorrelation %v, want ≈0.8", rho)
	}
}

func TestTrafficModelStrings(t *testing.T) {
	for m, want := range map[TrafficModel]string{
		ModelDaily: "daily", ModelSelfSimilar: "self-similar",
		ModelSurge: "surge", ModelConstant: "constant",
	} {
		if m.String() != want {
			t.Fatalf("String(%d) = %q", int(m), m.String())
		}
	}
	if !strings.Contains(TrafficModel(42).String(), "42") {
		t.Fatalf("unknown model should include number")
	}
}

func TestTrafficModelGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, m := range []TrafficModel{ModelDaily, ModelSelfSimilar, ModelSurge, ModelConstant} {
		xs := m.Generate(rng, 200, 96)
		if len(xs) != 200 {
			t.Fatalf("%v: length %d", m, len(xs))
		}
		mean := 0.0
		for _, x := range xs {
			if x < 0 {
				t.Fatalf("%v: negative load %v", m, x)
			}
			mean += x
		}
		mean /= 200
		if mean < 0.3 || mean > 3 {
			t.Fatalf("%v: mean load %v implausible", m, mean)
		}
	}
}

func TestTrafficModelGenerateUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	TrafficModel(42).Generate(rand.New(rand.NewSource(1)), 10, 96)
}

// Property: self-similar traffic is nonnegative and mass-conserving for any
// valid bias and length.
func TestSelfSimilarProperty(t *testing.T) {
	f := func(seed int64, biasRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bias := 0.55 + 0.4*float64(biasRaw)/255
		n := 1 + int(nRaw)
		xs := SelfSimilar(rng, n, bias)
		sum := 0.0
		for _, x := range xs {
			if x < 0 {
				return false
			}
			sum += x
		}
		// Truncation can drop mass; the retained prefix is still finite
		// and nonnegative with sane totals.
		return !math.IsNaN(sum) && !math.IsInf(sum, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
