module env2vec

go 1.22
