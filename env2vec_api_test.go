package env2vec_test

import (
	"testing"

	"env2vec"
)

// TestPublicAPIRoundTrip exercises the whole facade: corpus generation,
// training, calibration, detection, and embedding reuse for an unseen
// environment — the minimal adoption path a downstream user follows.
func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := env2vec.TelecomDefaults()
	cfg.Chains = 10
	cfg.BuildsPerChain = 3
	cfg.StepsPerBuild = 40
	cfg.FaultExecutions = 2
	corpus := env2vec.GenerateTelecomCorpus(cfg)
	if len(corpus.FaultTargets) != 2 {
		t.Fatalf("fault targets: %d", len(corpus.FaultTargets))
	}

	exclude := map[*env2vec.Series]bool{}
	for _, exec := range corpus.FaultTargets {
		exclude[exec.Series] = true
	}
	tcfg := env2vec.TrainerDefaults(env2vec.TelecomFeatureCount)
	tcfg.Train.Epochs = 6
	tcfg.Model.Hidden = 16
	tcfg.Model.GRUHidden = 8
	trained, err := env2vec.Train(corpus.Dataset, exclude, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if trained.Examples == 0 {
		t.Fatalf("no training examples")
	}

	det := env2vec.NewDetector(trained, env2vec.DetectConfig{Gamma: 2, AbsFilter: 5})
	for _, id := range corpus.ChainOrder {
		chain := corpus.ChainSeries[id]
		det.CalibrateChain(id, chain[:len(chain)-1])
	}
	totalAlarms := 0
	for _, exec := range corpus.FaultTargets {
		alarms := det.ProcessExecution("env2vec", exec.Series)
		totalAlarms += len(alarms)
		for _, a := range alarms {
			if a.ChainID != exec.Series.ChainID {
				t.Fatalf("alarm attributed to wrong chain")
			}
		}
	}
	if totalAlarms == 0 {
		t.Fatalf("no alarms on faulty executions")
	}

	// Embedding composition for an unseen tuple made of seen components.
	seen := corpus.Dataset.Series[0].Env
	unseen := env2vec.Environment{
		Testbed: seen.Testbed, SUT: seen.SUT,
		Testcase: seen.Testcase, Build: "Z99",
	}
	ids := trained.Schema.Encode(unseen)
	emb := trained.Model.EmbeddingFor(ids)
	if len(emb) != 4*tcfg.Model.EmbedDim {
		t.Fatalf("embedding length %d", len(emb))
	}
}

func TestKDNFacade(t *testing.T) {
	ds := env2vec.GenerateKDN(1)
	if len(ds.Series) != 3 {
		t.Fatalf("want 3 KDN series")
	}
	if ds.Series[0].CF.Cols != env2vec.KDNFeatureCount {
		t.Fatalf("feature count %d", ds.Series[0].CF.Cols)
	}
}

func TestWindowExamplesFacade(t *testing.T) {
	cfg := env2vec.TelecomDefaults()
	cfg.Chains = 2
	cfg.BuildsPerChain = 2
	cfg.StepsPerBuild = 10
	cfg.FaultExecutions = 0
	corpus := env2vec.GenerateTelecomCorpus(cfg)
	exs := env2vec.WindowExamples(corpus.Dataset.Series[0], 3)
	if len(exs) != 7 {
		t.Fatalf("examples: %d", len(exs))
	}
}
