// Command e2vproxy is the environment-affinity front tier for a fleet of
// e2vserve instances: it consistent-hashes each request's environment
// tuple <Testbed,SUT,Testcase,Build> onto a backend (bounded-load ring
// with virtual nodes), so every instance sees a stable slice of
// environments and its per-env quality state and micro-batches stay
// coherent. Backends are health-checked off GET /readyz (falling back to
// /healthz); a dead backend's slice re-homes deterministically to the
// next backend clockwise and returns when it rejoins. Requests that hit a
// dead or overloaded backend fail over along the ring within a retry
// budget; a saturated pool sheds with 429.
//
//	e2vproxy -backends http://h1:9090,http://h2:9090 [-addr :9080]
//	e2vproxy -backends ... -wire-addr :9081 -wire-backends h1:9091,h2:9091
//
// With -wire-addr the proxy additionally fronts the binary wire protocol:
// batched predicts are routed per environment group over pooled backend
// connections (same ring, health hysteresis, retry budget, and trace
// stitching as the JSON path), and subscribe-mode streams are spliced raw
// to their environment's home backend.
//
// Endpoints: POST /predict and POST /observe (routed), GET /quality
// (fleet union of per-env drift state), GET /metrics (the proxy's own
// routing metrics plus every live backend's exposition, labelled
// backend="host:port"), GET /statz (forwarded to one live backend, so
// load generators discover the model shape through the proxy), GET /fleet
// (routing state), GET /traces and GET /traces/{id} (tail-sampled
// distributed traces: proxy root + per-attempt spans stitched to the
// backend's stage spans), GET /healthz, GET /readyz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"env2vec/internal/obs"
	"env2vec/internal/proxy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "e2vproxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("e2vproxy", flag.ExitOnError)
	addr := fs.String("addr", ":9080", "listen address")
	backends := fs.String("backends", "", "comma-separated e2vserve base URLs (required)")
	wireAddr := fs.String("wire-addr", "", "binary wire-protocol listen address (e.g. :9081); empty disables")
	wireBackends := fs.String("wire-backends", "", "comma-separated backend wire addresses (host:port), parallel to -backends; required with -wire-addr")
	maxBody := fs.Int64("max-body", 4<<20, "max accepted HTTP request-body bytes (oversize answers 413)")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
	loadFactor := fs.Float64("load-factor", 1.25, "bounded-load factor c (≤1 disables the bound)")
	retries := fs.Int("retries", 0, "failover budget per request (0 = try every backend)")
	backoff := fs.Duration("retry-backoff", 5*time.Millisecond, "first retry delay, doubling per attempt")
	maxInflight := fs.Int("max-inflight", 0, "pool-wide in-flight cap before shedding 429s (0 = 256·backends)")
	check := fs.Duration("check", 2*time.Second, "health probe interval")
	failAfter := fs.Int("fail-after", 2, "consecutive probe failures that take a backend out")
	riseAfter := fs.Int("rise-after", 2, "consecutive probe successes that bring it back")
	timeout := fs.Duration("timeout", 10*time.Second, "per-attempt forward timeout")
	traceCap := fs.Int("trace-capacity", 1024, "traces retained in the tail-sampled store behind GET /traces")
	traceSample := fs.Float64("trace-sample", 0.1, "head-sampling rate for unremarkable traces (1 keeps all, <0 keeps none)")
	traceSlowMS := fs.Float64("trace-slow-ms", 250, "latency above which a trace is always retained (<0 disables)")
	logLevel := fs.String("log-level", "info", "log level: debug|info|warn|error")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/ handlers")
	_ = fs.Parse(args)
	if *backends == "" {
		return errors.New("-backends is required (comma-separated e2vserve URLs)")
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return errors.New("-backends parsed to an empty list")
	}
	var wireAddrs []string
	if *wireBackends != "" {
		for _, a := range strings.Split(*wireBackends, ",") {
			if a = strings.TrimSpace(a); a != "" {
				wireAddrs = append(wireAddrs, a)
			}
		}
		if len(wireAddrs) != len(urls) {
			return fmt.Errorf("-wire-backends lists %d addresses for %d backends; they must pair one-to-one", len(wireAddrs), len(urls))
		}
	}
	if *wireAddr != "" && len(wireAddrs) == 0 {
		return errors.New("-wire-addr requires -wire-backends")
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level, "e2vproxy")

	p := proxy.New(proxy.Config{
		Backends:      urls,
		WireBackends:  wireAddrs,
		MaxBodyBytes:  *maxBody,
		VNodes:        *vnodes,
		LoadFactor:    *loadFactor,
		Retries:       *retries,
		RetryBackoff:  *backoff,
		MaxInflight:   *maxInflight,
		CheckInterval: *check,
		FailAfter:     *failAfter,
		RiseAfter:     *riseAfter,
		Timeout:       *timeout,
		Trace:         obs.TraceStoreConfig{Capacity: *traceCap, SampleRate: *traceSample, SlowMS: *traceSlowMS},
		Obs:           obs.NewRegistry(),
		Logger:        obs.NewLogger(os.Stderr, level, "proxy"),
		EnablePprof:   *pprofOn,
	})
	p.Start()
	defer p.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: p}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "backends", len(urls),
			"endpoints", "POST /predict, POST /observe, GET /quality, GET /metrics, GET /statz, GET /fleet, GET /traces, GET /healthz, GET /readyz")
		errc <- httpSrv.ListenAndServe()
	}()
	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			return fmt.Errorf("wire listener: %w", err)
		}
		go func() {
			logger.Info("wire protocol listening", "addr", *wireAddr, "wire_backends", len(wireAddrs))
			if err := p.ServeWire(ln); err != nil {
				errc <- fmt.Errorf("wire listener: %w", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	logger.Info("drained; bye")
	return nil
}
