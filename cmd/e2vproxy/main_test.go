package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildProxy(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "e2vproxy")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		lastErr = err
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return string(body)
			}
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("scraping %s never succeeded (last err %v)", url, lastErr)
	return ""
}

func TestProxyRequiresBackends(t *testing.T) {
	bin := buildProxy(t)
	out, err := exec.Command(bin).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("no -backends: err=%v out=%q", err, out)
	}
	if !strings.Contains(string(out), "-backends is required") {
		t.Fatalf("unexpected error output: %q", out)
	}
}

// The daemon acceptance check: boot e2vproxy over two stub backends and
// scrape the aggregated surfaces through the front tier.
func TestProxyDaemonScrape(t *testing.T) {
	stub := func() *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ready") })
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "demo_total 1")
		})
		return httptest.NewServer(mux)
	}
	b1, b2 := stub(), stub()
	defer b1.Close()
	defer b2.Close()

	bin := buildProxy(t)
	port := freePort(t)
	cmd := exec.Command(bin,
		"-backends", b1.URL+","+b2.URL,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-check", "100ms", "-log-level", "error")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	if got := scrape(t, base+"/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("healthz: %q", got)
	}
	fleet := scrape(t, base+"/fleet")
	if !strings.Contains(fleet, `"live": 2`) {
		t.Fatalf("fleet does not show 2 live backends:\n%s", fleet)
	}
	metrics := scrape(t, base+"/metrics")
	for _, want := range []string{
		"env2vec_proxy_requests_total",
		"env2vec_proxy_backend_up",
		`demo_total{backend="` + strings.TrimPrefix(b1.URL, "http://") + `"}`,
		`demo_total{backend="` + strings.TrimPrefix(b2.URL, "http://") + `"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, metrics)
		}
	}
}
