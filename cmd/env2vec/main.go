// Command env2vec is the operational CLI around the library: generate
// synthetic corpora, train the single generic model, detect anomalies in an
// execution CSV, and serve the trained model over HTTP.
//
// Subcommands:
//
//	env2vec generate -out DIR [-chains N] [-steps N] [-seed N]
//	    Write the synthetic telecom corpus as per-execution CSV files.
//
//	env2vec train -data DIR -model FILE [-epochs N] [-window N]
//	    Train Env2Vec on every CSV in DIR and save a model snapshot.
//
//	env2vec detect -data DIR -model FILE -exec FILE [-gamma F]
//	    Score one execution CSV against the trained model, printing alarms.
//
//	env2vec serve [-model FILE] [-registry-dir DIR] [-replica-of URL] -addr :8080
//	    Run a model-registry daemon: publish a snapshot, serve a durable
//	    (disk-backed, crash-recovering) registry, or follow a primary as
//	    a read-only replica.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"env2vec/internal/anomaly"
	"env2vec/internal/dataset"
	"env2vec/internal/modelserver"
	"env2vec/internal/nn"
	"env2vec/internal/pipeline"
	"env2vec/internal/serve"
	"env2vec/internal/telecom"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "detect":
		err = cmdDetect(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "env2vec:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: env2vec <generate|train|detect|serve> [flags]")
	os.Exit(2)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	out := fs.String("out", "", "output directory (required)")
	chains := fs.Int("chains", 24, "number of build chains")
	steps := fs.Int("steps", 60, "timesteps per execution")
	seed := fs.Int64("seed", 1, "corpus seed")
	_ = fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("generate: -out is required")
	}
	cfg := telecom.DefaultConfig()
	cfg.Chains = *chains
	cfg.StepsPerBuild = *steps
	cfg.Seed = *seed
	corpus := telecom.Generate(cfg)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	n := 0
	for _, s := range corpus.Dataset.Series {
		name := fmt.Sprintf("%s_%s.csv", strings.ReplaceAll(s.ChainID, "|", "_"), s.Env.Build)
		if err := dataset.SaveSeriesFile(filepath.Join(*out, name), s, corpus.Dataset.FeatureNames); err != nil {
			return err
		}
		n++
	}
	fmt.Printf("wrote %d execution CSVs to %s (%d chains × %d builds, %d steps each)\n",
		n, *out, cfg.Chains, cfg.BuildsPerChain, cfg.StepsPerBuild)
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "", "directory of execution CSVs (required)")
	model := fs.String("model", "env2vec.model", "output snapshot path")
	epochs := fs.Int("epochs", 20, "max training epochs")
	window := fs.Int("window", 4, "RU-history window")
	_ = fs.Parse(args)
	if *data == "" {
		return fmt.Errorf("train: -data is required")
	}
	ds, err := dataset.LoadDir(*data)
	if err != nil {
		return err
	}
	cfg := pipeline.DefaultTrainerConfig(len(ds.FeatureNames))
	cfg.Train.Epochs = *epochs
	cfg.Model.Window = *window
	tr, err := pipeline.Train(ds, nil, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("trained on %d examples from %d executions; val MSE %.4f after %d epochs\n",
		tr.Examples, len(ds.Series), tr.Fit.FinalValLoss, tr.Fit.Epochs)
	snap := tr.Model.Snapshot()
	snap.Meta["window"] = fmt.Sprint(*window)
	// Embed the serving artifacts (config, vocab, scalers) so the snapshot
	// alone is enough for e2vserve to reconstruct a predictor.
	if err := serve.AttachArtifacts(snap, tr.Model.Config(), tr.Schema, tr.Standardizer, tr.YScale, tr.Baseline); err != nil {
		return err
	}
	if err := snap.SaveFile(*model); err != nil {
		return err
	}
	// Persist the preprocessing artifacts beside the weights.
	if err := saveArtifacts(*model+".artifacts", tr); err != nil {
		return err
	}
	fmt.Printf("saved model to %s\n", *model)
	return nil
}

// saveArtifacts stores the standardizer and target scale (gob via snapshot
// machinery would be overkill; a tiny CSV suffices and stays inspectable).
func saveArtifacts(path string, tr *pipeline.TrainResult) error {
	var b strings.Builder
	fmt.Fprintf(&b, "ymu,%g\nysigma,%g\n", tr.YScale.Mu, tr.YScale.Sigma)
	for j, m := range tr.Standardizer.Mean {
		fmt.Fprintf(&b, "feat%d,%g,%g\n", j, m, tr.Standardizer.Std[j])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	data := fs.String("data", "", "directory of historical execution CSVs (required)")
	execFile := fs.String("exec", "", "execution CSV to score (required)")
	gamma := fs.Float64("gamma", 2, "γ threshold (σ multiplier)")
	absFilter := fs.Float64("abs-filter", 5, "absolute CPU deviation filter (0 disables)")
	epochs := fs.Int("epochs", 20, "training epochs (model is retrained from -data)")
	window := fs.Int("window", 4, "RU-history window")
	_ = fs.Parse(args)
	if *data == "" || *execFile == "" {
		return fmt.Errorf("detect: -data and -exec are required")
	}
	ds, err := dataset.LoadDir(*data)
	if err != nil {
		return err
	}
	target, _, err := dataset.LoadSeriesFile(*execFile)
	if err != nil {
		return err
	}
	// Exclude the target execution from training if present in -data.
	exclude := map[*dataset.Series]bool{}
	for _, s := range ds.Series {
		if s.Env == target.Env && s.Len() == target.Len() {
			exclude[s] = true
		}
	}
	cfg := pipeline.DefaultTrainerConfig(len(ds.FeatureNames))
	cfg.Train.Epochs = *epochs
	cfg.Model.Window = *window
	tr, err := pipeline.Train(ds, exclude, cfg)
	if err != nil {
		return err
	}
	wf := pipeline.NewWorkflow(tr, anomaly.Config{Gamma: *gamma, AbsFilter: *absFilter})
	var history []*dataset.Series
	for _, s := range ds.Series {
		if s.ChainID == target.ChainID && !exclude[s] {
			history = append(history, s)
		}
	}
	if len(history) > 0 {
		wf.CalibrateChain(target.ChainID, history)
	} else {
		fmt.Println("note: no chain history found — using the execution's own error distribution (§4.3 unseen-environment mode)")
	}
	alarms := wf.ProcessExecution("env2vec", target)
	if len(alarms) == 0 {
		fmt.Println("no anomalies detected")
		return nil
	}
	fmt.Printf("%d alarm(s):\n", len(alarms))
	for _, a := range alarms {
		fmt.Printf("  %s\n", a)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "", "model snapshot to publish on start (optional with -registry-dir or -replica-of)")
	name := fs.String("name", "env2vec", "model name -model is published under")
	addr := fs.String("addr", ":8080", "listen address")
	dir := fs.String("registry-dir", "", "durable registry directory: replayed on start, every publish fsynced to a per-shard log")
	replicaOf := fs.String("replica-of", "", "primary registry base URL; run as a read-only syncing replica")
	syncEvery := fs.Duration("sync", 10*time.Second, "replica sync interval (with -replica-of; long-poll fallback pacing)")
	longPoll := fs.Duration("long-poll", 30*time.Second, "park replica polls on the primary this long (?wait=); 0 = plain polling")
	_ = fs.Parse(args)
	if *model == "" && *dir == "" && *replicaOf == "" {
		return fmt.Errorf("serve: need -model, -registry-dir, or -replica-of")
	}
	if *model != "" && *replicaOf != "" {
		return fmt.Errorf("serve: -model and -replica-of are exclusive (replicas are read-only)")
	}
	var reg *modelserver.Registry
	if *dir != "" {
		var err error
		if reg, err = modelserver.OpenRegistry(modelserver.WithDir(*dir)); err != nil {
			return err
		}
		defer reg.Close()
		if rec := reg.RecoveredRecords(); rec > 0 {
			fmt.Fprintf(os.Stderr, "serve: quarantined %d torn log record(s) during replay of %s\n", rec, *dir)
		}
		if names := reg.Names(); len(names) > 0 {
			fmt.Printf("replayed registry %s: models %s\n", *dir, strings.Join(names, ", "))
		}
	} else {
		reg = modelserver.NewRegistry()
	}
	if *model != "" {
		snap, err := nn.LoadSnapshotFile(*model)
		if err != nil {
			return err
		}
		if _, err := reg.Publish(*name, snap, time.Now().Unix()); err != nil {
			return err
		}
	}
	if *replicaOf != "" {
		client := &modelserver.Client{BaseURL: *replicaOf}
		if *longPoll > 0 {
			client.HTTP = &http.Client{Timeout: *longPoll + 30*time.Second}
		}
		replica := &modelserver.Replica{
			Client:   client,
			Registry: reg,
			Interval: *syncEvery,
			LongPoll: *longPoll,
			OnError: func(err error) {
				fmt.Fprintln(os.Stderr, "serve: replica sync:", err)
			},
		}
		go replica.Run(context.Background())
		fmt.Printf("replicating %s every %s\n", *replicaOf, *syncEvery)
	}
	fmt.Printf("serving model registry on %s (GET /models/%s/latest, GET /versions)\n", *addr, *name)
	h := &modelserver.Handler{
		Registry: reg,
		Now:      func() int64 { return time.Now().Unix() },
		ReadOnly: *replicaOf != "",
	}
	return http.ListenAndServe(*addr, h)
}
