package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the command in the current directory into a temp dir and
// returns the binary path.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "env2vec")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v\n%s", args, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

func TestCLIUsageAndFlagErrors(t *testing.T) {
	bin := buildCLI(t)

	out, code := runCLI(t, bin)
	if code != 2 || !strings.Contains(out, "usage:") {
		t.Fatalf("no args: code=%d out=%q", code, out)
	}
	out, code = runCLI(t, bin, "frobnicate")
	if code != 2 || !strings.Contains(out, "usage:") {
		t.Fatalf("unknown subcommand: code=%d out=%q", code, out)
	}
	out, code = runCLI(t, bin, "generate")
	if code != 1 || !strings.Contains(out, "-out is required") {
		t.Fatalf("generate without -out: code=%d out=%q", code, out)
	}
	out, code = runCLI(t, bin, "train")
	if code != 1 || !strings.Contains(out, "-data is required") {
		t.Fatalf("train without -data: code=%d out=%q", code, out)
	}
	out, code = runCLI(t, bin, "detect", "-data", "x")
	if code != 1 || !strings.Contains(out, "-exec are required") {
		t.Fatalf("detect without -exec: code=%d out=%q", code, out)
	}
	out, code = runCLI(t, bin, "serve")
	if code != 1 || !strings.Contains(out, "-model is required") {
		t.Fatalf("serve without -model: code=%d out=%q", code, out)
	}
}

func TestCLIGenerateWritesCorpus(t *testing.T) {
	bin := buildCLI(t)
	dir := filepath.Join(t.TempDir(), "corpus")
	out, code := runCLI(t, bin, "generate", "-out", dir, "-chains", "2", "-steps", "12", "-seed", "7")
	if code != 0 {
		t.Fatalf("generate: code=%d out=%q", code, out)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSVs written to %s (err=%v)", dir, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil || !strings.Contains(string(data), ",") {
		t.Fatalf("unreadable CSV %s: %v", matches[0], err)
	}
}
