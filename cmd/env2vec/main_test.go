package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"env2vec/internal/modelserver"
	"env2vec/internal/nn"
)

// buildCLI compiles the command in the current directory into a temp dir and
// returns the binary path.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "env2vec")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v\n%s", args, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

func TestCLIUsageAndFlagErrors(t *testing.T) {
	bin := buildCLI(t)

	out, code := runCLI(t, bin)
	if code != 2 || !strings.Contains(out, "usage:") {
		t.Fatalf("no args: code=%d out=%q", code, out)
	}
	out, code = runCLI(t, bin, "frobnicate")
	if code != 2 || !strings.Contains(out, "usage:") {
		t.Fatalf("unknown subcommand: code=%d out=%q", code, out)
	}
	out, code = runCLI(t, bin, "generate")
	if code != 1 || !strings.Contains(out, "-out is required") {
		t.Fatalf("generate without -out: code=%d out=%q", code, out)
	}
	out, code = runCLI(t, bin, "train")
	if code != 1 || !strings.Contains(out, "-data is required") {
		t.Fatalf("train without -data: code=%d out=%q", code, out)
	}
	out, code = runCLI(t, bin, "detect", "-data", "x")
	if code != 1 || !strings.Contains(out, "-exec are required") {
		t.Fatalf("detect without -exec: code=%d out=%q", code, out)
	}
	out, code = runCLI(t, bin, "serve")
	if code != 1 || !strings.Contains(out, "need -model, -registry-dir, or -replica-of") {
		t.Fatalf("serve without a source: code=%d out=%q", code, out)
	}
	out, code = runCLI(t, bin, "serve", "-model", "x", "-replica-of", "http://localhost:1")
	if code != 1 || !strings.Contains(out, "replicas are read-only") {
		t.Fatalf("serve -model with -replica-of: code=%d out=%q", code, out)
	}
}

func TestCLIGenerateWritesCorpus(t *testing.T) {
	bin := buildCLI(t)
	dir := filepath.Join(t.TempDir(), "corpus")
	out, code := runCLI(t, bin, "generate", "-out", dir, "-chains", "2", "-steps", "12", "-seed", "7")
	if code != 0 {
		t.Fatalf("generate: code=%d out=%q", code, out)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSVs written to %s (err=%v)", dir, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil || !strings.Contains(string(data), ",") {
		t.Fatalf("unreadable CSV %s: %v", matches[0], err)
	}
}

// TestCLIRegistryDaemonReplication smoke-tests the registry daemon mode:
// a durable primary daemon accepts an HTTP publish, a -replica-of daemon
// converges on it, and a restarted primary replays its disk instead of
// coming up empty.
func TestCLIRegistryDaemonReplication(t *testing.T) {
	bin := buildCLI(t)
	primaryDir := t.TempDir()
	primaryPort, replicaPort := freePort(t), freePort(t)
	primaryURL := fmt.Sprintf("http://127.0.0.1:%d", primaryPort)
	replicaURL := fmt.Sprintf("http://127.0.0.1:%d", replicaPort)

	startDaemon := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		return cmd
	}
	awaitVector := func(base string, wantVersion int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			vec, _, _, err := (&modelserver.Client{BaseURL: base}).FetchVersionVector("")
			if err == nil && vec.Models()["env2vec"] == wantVersion {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never reached env2vec v%d (last err %v)", base, wantVersion, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	primary := startDaemon("serve", "-registry-dir", primaryDir, "-addr", fmt.Sprintf("127.0.0.1:%d", primaryPort))
	awaitVector(primaryURL, 0)

	// Publish over HTTP, like the training pipeline would.
	p := nn.NewParam("w", 2, 2)
	snap := nn.TakeSnapshot([]*nn.Param{p}, nil)
	client := &modelserver.Client{BaseURL: primaryURL}
	if v, err := client.Publish("env2vec", snap); err != nil || v != 1 {
		t.Fatalf("publish: %d %v", v, err)
	}

	// A follower daemon converges.
	startDaemon("serve", "-replica-of", primaryURL, "-sync", "100ms", "-addr", fmt.Sprintf("127.0.0.1:%d", replicaPort))
	awaitVector(replicaURL, 1)
	if _, ver, err := (&modelserver.Client{BaseURL: replicaURL}).FetchLatest("env2vec"); err != nil || ver != 1 {
		t.Fatalf("replica fetch: v%d %v", ver, err)
	}
	// The follower's HTTP surface is read-only: a local publish would
	// collide with the primary's numbering.
	if _, err := (&modelserver.Client{BaseURL: replicaURL}).Publish("env2vec", snap); err == nil ||
		!strings.Contains(err.Error(), "publish to the primary") {
		t.Fatalf("replica accepted a publish: %v", err)
	}

	// Kill the primary and restart it on its directory: the publish survives.
	_ = primary.Process.Kill()
	_, _ = primary.Process.Wait()
	startDaemon("serve", "-registry-dir", primaryDir, "-addr", fmt.Sprintf("127.0.0.1:%d", primaryPort))
	awaitVector(primaryURL, 1)
}

// freePort reserves an ephemeral port and releases it for a daemon.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}
