// Command kdnbench regenerates the §4.1 benchmark study: Table 3 (dataset
// splits) and Table 4 (MAE/MSE of eight methods on the three KDN VNF
// datasets).
//
// Usage:
//
//	kdnbench [-table3] [-seeds N] [-epochs N] [-hidden N] [-skip-svr] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"env2vec/internal/experiments"
)

func main() {
	table3Only := flag.Bool("table3", false, "print only Table 3 (dataset splits)")
	quick := flag.Bool("quick", false, "use unit-test-scale settings (seconds, not minutes)")
	seeds := flag.Int("seeds", 0, "override number of seeds for neural methods")
	epochs := flag.Int("epochs", 0, "override max training epochs")
	hidden := flag.Int("hidden", 0, "override hidden width")
	skipSVR := flag.Bool("skip-svr", false, "skip the SVR baseline (slowest method)")
	flag.Parse()

	fmt.Println("Table 3 — KDN dataset splits")
	fmt.Println(experiments.Table3())
	if *table3Only {
		return
	}

	opts := experiments.DefaultTable4Options()
	if *quick {
		opts = experiments.QuickTable4Options()
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}
	if *epochs > 0 {
		opts.Epochs = *epochs
	}
	if *hidden > 0 {
		opts.Hidden = *hidden
	}
	if *skipSVR {
		opts.SkipSVR = true
	}

	fmt.Printf("Running Table 4 (seeds=%d epochs=%d hidden=%d svr=%v)...\n\n",
		opts.Seeds, opts.Epochs, opts.Hidden, !opts.SkipSVR)
	start := time.Now()
	res, err := experiments.RunTable4(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kdnbench:", err)
		os.Exit(1)
	}
	fmt.Println("Table 4 — MAE/MSE on the three VNF datasets")
	fmt.Println(experiments.RenderTable4(res))
	fmt.Println("Paired t-test p-values (Env2Vec vs RFNN absolute errors):")
	for vnf, p := range res.PairedP {
		fmt.Printf("  %-9s p=%.4g\n", vnf, p)
	}
	fmt.Printf("\ncompleted in %s\n", time.Since(start).Round(time.Second))
}
