// Command tsdbd runs the Prometheus-like time-series database substrate:
// it scrapes /metrics from the targets listed in a file-based
// service-discovery config (workflow step 1) and serves range queries over
// HTTP (workflow step 3).
//
// Its own /metrics endpoint leads with the daemon's self-telemetry
// (scrape/error counters, stored-series gauge) followed by the federation
// dump of every stored series. Scrape failures, previously silent, are
// logged as structured (slog) records. -pprof mounts /debug/pprof/.
//
// Usage:
//
//	tsdbd -sd sd.json [-addr :9090] [-interval 15s] [-log-level info] [-pprof]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"env2vec/internal/obs"
	"env2vec/internal/tsdb"
)

func main() {
	sd := flag.String("sd", "", "service-discovery JSON file (required)")
	addr := flag.String("addr", ":9090", "listen address")
	interval := flag.Duration("interval", 15*time.Second, "scrape interval")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/ handlers")
	flag.Parse()
	if *sd == "" {
		fmt.Fprintln(os.Stderr, "tsdbd: -sd is required")
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsdbd:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, "tsdbd")

	db := tsdb.New()
	scraper := tsdb.NewScraper(db, *sd, *interval)
	scraper.Logger = obs.NewLogger(os.Stderr, level, "scraper")

	reg := obs.NewRegistry()
	reg.CounterFunc("tsdb_scrapes_total", "Target scrapes attempted.", nil, func() uint64 {
		scrapes, _ := scraper.Stats()
		return uint64(scrapes)
	})
	reg.CounterFunc("tsdb_scrape_errors_total", "Target scrapes that failed.", nil, func() uint64 {
		_, errs := scraper.Stats()
		return uint64(errs)
	})
	reg.GaugeFunc("tsdb_stored_series", "Distinct series currently stored.", nil, func() float64 {
		return float64(db.NumSeries())
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go scraper.Run(ctx)

	mux := http.NewServeMux()
	mux.Handle("/", &tsdb.Handler{DB: db, SelfMetrics: reg})
	if *pprofOn {
		obs.RegisterPprof(mux)
	}
	srv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	logger.Info("listening", "addr", *addr, "sd", *sd, "interval", *interval, "pprof", *pprofOn)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	}
	scrapes, errs := scraper.Stats()
	logger.Info("stopped", "scrapes", scrapes, "scrape_errors", errs, "series", db.NumSeries())
}
