// Command tsdbd runs the fleet's monitoring plane: it scrapes /metrics
// from the targets listed in a file-based service-discovery config
// (workflow step 1), serves range queries over HTTP (workflow step 3),
// evaluates an expression query engine (GET /query), runs recording and
// SLO burn-rate alerting rules each scrape interval, and renders a
// self-contained fleet health dashboard (GET /dashboard).
//
// Its own /metrics endpoint leads with the daemon's self-telemetry
// (scrape/rule/eviction counters, stored-series and alert gauges)
// followed by the federation dump of every stored series. Firing alerts
// are pushed to an alarm store (-alarms) as "slo"-sourced alarms,
// landing in the same database the drift detector feeds. -pprof mounts
// /debug/pprof/.
//
// Usage:
//
//	tsdbd -sd sd.json [-addr :9090] [-interval 15s] [-retention 2h]
//	      [-max-samples 0] [-scrape-concurrency 8]
//	      [-rules rules.json | -default-slo-rules]
//	      [-slo-objective 0.99] [-slo-latency-ms 250]
//	      [-alarms http://alarms:7070] [-log-level info] [-pprof]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"env2vec/internal/obs"
	"env2vec/internal/quality"
	"env2vec/internal/tsdb"
)

func main() {
	sd := flag.String("sd", "", "service-discovery JSON file (required)")
	addr := flag.String("addr", ":9090", "listen address")
	interval := flag.Duration("interval", 15*time.Second, "scrape interval")
	retention := flag.Duration("retention", 2*time.Hour, "drop samples older than this; 0 keeps everything")
	maxSamples := flag.Int("max-samples", 0, "hard cap on samples per series; 0 = unlimited")
	scrapeConc := flag.Int("scrape-concurrency", 8, "parallel target scrapes per cycle")
	rulesPath := flag.String("rules", "", "JSON recording/alerting rules file (hot-reloaded on change)")
	defaultSLO := flag.Bool("default-slo-rules", false, "load the built-in multi-window SLO burn-rate rules")
	sloObjective := flag.Float64("slo-objective", 0.99, "availability objective for -default-slo-rules (0,1)")
	sloLatencyMs := flag.Float64("slo-latency-ms", 250, "p99 latency objective in ms for -default-slo-rules")
	alarmsURL := flag.String("alarms", "", "alarm store base URL; firing alerts are pushed to POST /alarms")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/ handlers")
	flag.Parse()
	if *sd == "" {
		fmt.Fprintln(os.Stderr, "tsdbd: -sd is required")
		os.Exit(2)
	}
	if *rulesPath != "" && *defaultSLO {
		fmt.Fprintln(os.Stderr, "tsdbd: -rules and -default-slo-rules are mutually exclusive")
		os.Exit(2)
	}
	if *defaultSLO && (*sloObjective <= 0 || *sloObjective >= 1) {
		fmt.Fprintln(os.Stderr, "tsdbd: -slo-objective must be in (0,1)")
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsdbd:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, "tsdbd")

	db := tsdb.New()
	db.SetRetention(int64(retention.Seconds()))
	db.SetMaxSamplesPerSeries(*maxSamples)
	scraper := tsdb.NewScraper(db, *sd, *interval)
	scraper.Logger = obs.NewLogger(os.Stderr, level, "scraper")
	scraper.Concurrency = *scrapeConc

	engine := tsdb.NewEngine(db)
	var rules *tsdb.Rules
	if *rulesPath != "" || *defaultSLO {
		rules = tsdb.NewRules(engine)
		rules.Logger = obs.NewLogger(os.Stderr, level, "rules")
		if *alarmsURL != "" {
			rules.Sink = quality.HTTPSink{URL: *alarmsURL}
		}
		if *rulesPath != "" {
			if err := rules.LoadFile(*rulesPath); err != nil {
				fmt.Fprintln(os.Stderr, "tsdbd:", err)
				os.Exit(2)
			}
		} else {
			if err := rules.Load(tsdb.DefaultSLORules(*sloObjective, *sloLatencyMs)); err != nil {
				fmt.Fprintln(os.Stderr, "tsdbd:", err)
				os.Exit(2)
			}
		}
	}

	reg := obs.NewRegistry()
	reg.CounterFunc("tsdb_scrapes_total", "Target scrapes attempted.", nil, func() uint64 {
		scrapes, _ := scraper.Stats()
		return uint64(scrapes)
	})
	reg.CounterFunc("tsdb_scrape_errors_total", "Target scrapes that failed.", nil, func() uint64 {
		_, errs := scraper.Stats()
		return uint64(errs)
	})
	reg.GaugeFunc("tsdb_stored_series", "Distinct series currently stored.", nil, func() float64 {
		return float64(db.NumSeries())
	})
	reg.CounterFunc("tsdb_evicted_samples_total", "Samples dropped by retention and per-series caps.", nil, db.EvictedSamples)
	if rules != nil {
		reg.CounterFunc("tsdb_rule_evals_total", "Rule evaluations attempted.", nil, rules.Evals)
		reg.CounterFunc("tsdb_rule_eval_failures_total", "Rule evaluations or reloads that failed.", nil, rules.EvalFailures)
		reg.CounterFunc("tsdb_rule_reloads_total", "Successful hot reloads of the rules file.", nil, rules.Reloads)
		reg.CounterFunc("tsdb_rule_alarms_total", "Firing alerts pushed to the alarm store.", nil, rules.AlarmsPushed)
		reg.GaugeFunc("tsdb_alerts_pending", "Alert instances currently pending.", nil, func() float64 {
			return float64(rules.PendingAlerts())
		})
		reg.GaugeFunc("tsdb_alerts_firing", "Alert instances currently firing.", nil, func() float64 {
			return float64(rules.FiringAlerts())
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go scraper.Run(ctx)
	if rules != nil {
		go func() {
			ticker := time.NewTicker(*interval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					rules.EvalOnce()
				}
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", &tsdb.Handler{DB: db, SelfMetrics: reg, Engine: engine, Rules: rules})
	if *pprofOn {
		obs.RegisterPprof(mux)
	}
	srv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	logger.Info("listening", "addr", *addr, "sd", *sd, "interval", *interval,
		"retention", *retention, "rules", *rulesPath, "default_slo", *defaultSLO,
		"alarms", *alarmsURL, "pprof", *pprofOn)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	}
	scrapes, errs := scraper.Stats()
	logger.Info("stopped", "scrapes", scrapes, "scrape_errors", errs, "series", db.NumSeries())
}
