// Command tsdbd runs the Prometheus-like time-series database substrate:
// it scrapes /metrics from the targets listed in a file-based
// service-discovery config (workflow step 1) and serves range queries over
// HTTP (workflow step 3).
//
// Usage:
//
//	tsdbd -sd sd.json [-addr :9090] [-interval 15s]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"env2vec/internal/tsdb"
)

func main() {
	sd := flag.String("sd", "", "service-discovery JSON file (required)")
	addr := flag.String("addr", ":9090", "listen address")
	interval := flag.Duration("interval", 15*time.Second, "scrape interval")
	flag.Parse()
	if *sd == "" {
		fmt.Fprintln(os.Stderr, "tsdbd: -sd is required")
		os.Exit(2)
	}
	db := tsdb.New()
	scraper := tsdb.NewScraper(db, *sd, *interval)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go scraper.Run(ctx)

	srv := &http.Server{Addr: *addr, Handler: &tsdb.Handler{DB: db}}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	fmt.Printf("tsdbd listening on %s, scraping %s every %s\n", *addr, *sd, *interval)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "tsdbd:", err)
		os.Exit(1)
	}
	scrapes, errs := scraper.Stats()
	fmt.Printf("tsdbd stopped after %d scrapes (%d errors), %d series stored\n", scrapes, errs, db.NumSeries())
}
