package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildTSDBD(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tsdbd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestTSDBDRequiresSDConfig(t *testing.T) {
	bin := buildTSDBD(t)
	out, err := exec.Command(bin).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("no args: err=%v out=%q", err, out)
	}
	if !strings.Contains(string(out), "-sd is required") {
		t.Fatalf("missing flag message: %q", out)
	}
}

func TestTSDBDHelpListsFlags(t *testing.T) {
	bin := buildTSDBD(t)
	out, _ := exec.Command(bin, "-h").CombinedOutput()
	for _, flag := range []string{"-sd", "-addr", "-interval"} {
		if !strings.Contains(string(out), flag) {
			t.Fatalf("help output missing %s: %q", flag, out)
		}
	}
}

// TestTSDBDMetricsScrape boots the daemon against an empty discovery file
// and checks /metrics leads with the daemon's own telemetry.
func TestTSDBDMetricsScrape(t *testing.T) {
	bin := buildTSDBD(t)
	sd := filepath.Join(t.TempDir(), "sd.json")
	if err := os.WriteFile(sd, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	cmd := exec.Command(bin, "-sd", sd, "-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-interval", "50ms", "-log-level", "error")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	deadline := time.Now().Add(10 * time.Second)
	var body string
	for {
		resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/metrics", port))
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				body = string(b)
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("tsdbd /metrics never answered (last err %v)", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE tsdb_scrapes_total counter",
		"# TYPE tsdb_scrape_errors_total counter",
		"# TYPE tsdb_stored_series gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, body)
		}
	}
}
