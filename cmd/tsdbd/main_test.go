package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildTSDBD(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tsdbd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestTSDBDRequiresSDConfig(t *testing.T) {
	bin := buildTSDBD(t)
	out, err := exec.Command(bin).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("no args: err=%v out=%q", err, out)
	}
	if !strings.Contains(string(out), "-sd is required") {
		t.Fatalf("missing flag message: %q", out)
	}
}

func TestTSDBDHelpListsFlags(t *testing.T) {
	bin := buildTSDBD(t)
	out, _ := exec.Command(bin, "-h").CombinedOutput()
	for _, flag := range []string{"-sd", "-addr", "-interval"} {
		if !strings.Contains(string(out), flag) {
			t.Fatalf("help output missing %s: %q", flag, out)
		}
	}
}

// TestTSDBDMetricsScrape boots the daemon against an empty discovery file
// and checks /metrics leads with the daemon's own telemetry.
func TestTSDBDMetricsScrape(t *testing.T) {
	bin := buildTSDBD(t)
	sd := filepath.Join(t.TempDir(), "sd.json")
	if err := os.WriteFile(sd, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	cmd := exec.Command(bin, "-sd", sd, "-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-interval", "50ms", "-log-level", "error")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	deadline := time.Now().Add(10 * time.Second)
	var body string
	for {
		resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/metrics", port))
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				body = string(b)
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("tsdbd /metrics never answered (last err %v)", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE tsdb_scrapes_total counter",
		"# TYPE tsdb_scrape_errors_total counter",
		"# TYPE tsdb_stored_series gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, body)
		}
	}
}

func TestTSDBDRejectsConflictingRuleFlags(t *testing.T) {
	bin := buildTSDBD(t)
	sd := filepath.Join(t.TempDir(), "sd.json")
	if err := os.WriteFile(sd, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-sd", sd, "-rules", "r.json", "-default-slo-rules").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("conflicting flags: err=%v out=%q", err, out)
	}
	if !strings.Contains(string(out), "mutually exclusive") {
		t.Fatalf("missing conflict message: %q", out)
	}
	out, err = exec.Command(bin, "-sd", sd, "-default-slo-rules", "-slo-objective", "1.5").CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("bad objective: err=%v out=%q", err, out)
	}
}

func TestTSDBDRejectsBadRulesFile(t *testing.T) {
	bin := buildTSDBD(t)
	dir := t.TempDir()
	sd := filepath.Join(dir, "sd.json")
	if err := os.WriteFile(sd, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	rules := filepath.Join(dir, "rules.json")
	if err := os.WriteFile(rules, []byte(`{"alerting":[{"name":"x","expr":"sum("}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-sd", sd, "-rules", rules).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("bad rules file: err=%v out=%q", err, out)
	}
}

// TestTSDBDMonitoringEndpoints boots the daemon with the built-in SLO
// rules and smoke-tests the monitoring plane's HTTP surface.
func TestTSDBDMonitoringEndpoints(t *testing.T) {
	bin := buildTSDBD(t)
	sd := filepath.Join(t.TempDir(), "sd.json")
	if err := os.WriteFile(sd, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	cmd := exec.Command(bin, "-sd", sd, "-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-interval", "50ms", "-default-slo-rules", "-retention", "1h", "-log-level", "error")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	get := func(path string) (int, string) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d%s", port, path))
			if err == nil {
				b, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr == nil {
					return resp.StatusCode, string(b)
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("GET %s never answered (last err %v)", path, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	if code, body := get("/alerts"); code != http.StatusOK || !strings.Contains(body, `"status":"success"`) {
		t.Fatalf("/alerts: %d %q", code, body)
	}
	if code, body := get("/dashboard"); code != http.StatusOK || !strings.Contains(body, "fleet health") {
		t.Fatalf("/dashboard: %d %.120q", code, body)
	}
	if code, body := get("/query?expr=" + "1%2B1"); code != http.StatusOK || !strings.Contains(body, `"value":2`) {
		t.Fatalf("/query scalar: %d %q", code, body)
	}
	if code, _ := get("/query?expr=sum%28"); code != http.StatusBadRequest {
		t.Fatalf("/query bad expr: %d", code)
	}
	_, body := get("/metrics")
	for _, want := range []string{
		"tsdb_rule_evals_total",
		"tsdb_rule_reloads_total",
		"tsdb_alerts_pending",
		"tsdb_alerts_firing",
		"tsdb_evicted_samples_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics page missing %q", want)
		}
	}
}
