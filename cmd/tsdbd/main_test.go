package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTSDBD(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tsdbd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestTSDBDRequiresSDConfig(t *testing.T) {
	bin := buildTSDBD(t)
	out, err := exec.Command(bin).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("no args: err=%v out=%q", err, out)
	}
	if !strings.Contains(string(out), "-sd is required") {
		t.Fatalf("missing flag message: %q", out)
	}
}

func TestTSDBDHelpListsFlags(t *testing.T) {
	bin := buildTSDBD(t)
	out, _ := exec.Command(bin, "-h").CombinedOutput()
	for _, flag := range []string{"-sd", "-addr", "-interval"} {
		if !strings.Contains(string(out), flag) {
			t.Fatalf("help output missing %s: %q", flag, out)
		}
	}
}
