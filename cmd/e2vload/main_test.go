package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/obs"
	"env2vec/internal/quality"
	"env2vec/internal/serve"
)

// loadTestServer hosts a real serve.Server (quality monitor on) behind
// httptest for the generator to hammer.
func loadTestServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	cfg := core.Config{In: 3, Hidden: 8, GRUHidden: 4, EmbedDim: 3, Window: 2, Seed: 5}
	schema := envmeta.NewSchema()
	schema.Observe(envmeta.Environment{Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "B1"})
	schema.Freeze()
	b := &serve.Bundle{
		Name: "test", Version: 1,
		Model:    core.New(cfg, schema),
		Schema:   schema,
		YScale:   dataset.YScaler{Mu: 50, Sigma: 10},
		Baseline: &quality.Baseline{Mu: 0, Sigma: 5, Samples: 100},
	}
	s := serve.New(serve.Config{
		MaxBatch: 8, MaxLinger: time.Millisecond, QueueDepth: 64, Workers: 2,
		Quality: &quality.Config{},
		// Keep every trace so the slow-trace report below is deterministic.
		Trace: obs.TraceStoreConfig{Capacity: 256, SampleRate: 1},
	})
	t.Cleanup(s.Close)
	s.SetBundle(b)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

func TestLoadGeneratorDrivesServer(t *testing.T) {
	s, srv := loadTestServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", srv.URL, "-c", "3", "-duration", "300ms", "-rps", "300", "-actuals", "0.5",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if s.Stats().Served == 0 {
		t.Fatal("generator served no traffic")
	}
	for _, want := range []string{
		"model=test/v1 in=3 window=2",
		"sent ",
		"client latency p50=",
		"forward p99=",
		// The slow-trace report: N slowest retained traces as span trees.
		"slow trace ",
		"serve.request",
		"serve.forward",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// Half the requests carried ground truth, so the quality monitor saw them.
	if s.Quality().Snapshot().Observations == 0 {
		t.Fatalf("no quality observations despite -actuals 0.5")
	}
}

func TestLoadGeneratorRefusesModellessServer(t *testing.T) {
	s := serve.New(serve.Config{MaxBatch: 1, QueueDepth: 8, Workers: 1})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	var out bytes.Buffer
	err := run([]string{"-addr", srv.URL, "-duration", "100ms"}, &out)
	if err == nil || !strings.Contains(err.Error(), "no model") {
		t.Fatalf("expected no-model error, got %v", err)
	}
}

func TestLoadGeneratorUnreachableTarget(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-duration", "100ms"}, &out); err == nil {
		t.Fatal("expected error for unreachable target")
	}
}

func TestLoadGeneratorMultiTarget(t *testing.T) {
	s1, srv1 := loadTestServer(t)
	s2, srv2 := loadTestServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-targets", srv1.URL + "," + srv2.URL,
		"-c", "4", "-duration", "300ms", "-rps", "400",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if s1.Stats().Served == 0 || s2.Stats().Served == 0 {
		t.Fatalf("load not spread: target1 served %d, target2 served %d",
			s1.Stats().Served, s2.Stats().Served)
	}
	for _, want := range []string{
		"targets 2 model=test/v1",
		"target " + srv1.URL + ":",
		"target " + srv2.URL + ":",
		"server " + srv1.URL + " p50=",
		"server " + srv2.URL + " p50=",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// With only one target of several reachable for shape discovery, the
// generator must still boot (it tries each in turn).
func TestLoadGeneratorShapeDiscoveryFallsBack(t *testing.T) {
	_, srv := loadTestServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-targets", "http://127.0.0.1:1," + srv.URL,
		"-c", "2", "-duration", "150ms",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "targets 2 model=test/v1") {
		t.Fatalf("discovery fallback failed:\n%s", out.String())
	}
}

// TestLoadGeneratorAlertsGate: with -alerts, the run fails when the
// monitoring plane reports a firing alert and passes when it doesn't.
func TestLoadGeneratorAlertsGate(t *testing.T) {
	_, srv := loadTestServer(t)

	firing := true
	alerts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/alerts" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if firing {
			fmt.Fprint(w, `{"status":"success","data":[{"name":"ServeAvailabilityFastBurn","state":"firing","value":22.5,"annotations":{"summary":"budget burning"}}]}`)
		} else {
			fmt.Fprint(w, `{"status":"success","data":[]}`)
		}
	}))
	t.Cleanup(alerts.Close)

	var out bytes.Buffer
	err := run([]string{"-addr", srv.URL, "-duration", "100ms", "-slow-traces", "0", "-alerts", alerts.URL}, &out)
	if err == nil || !strings.Contains(err.Error(), "firing") {
		t.Fatalf("expected firing-alert failure, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "alert firing ServeAvailabilityFastBurn") {
		t.Fatalf("firing alert not printed:\n%s", out.String())
	}

	firing = false
	out.Reset()
	if err := run([]string{"-addr", srv.URL, "-duration", "100ms", "-slow-traces", "0", "-alerts", alerts.URL}, &out); err != nil {
		t.Fatalf("clean alerts should pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "none firing") {
		t.Fatalf("clean summary missing:\n%s", out.String())
	}
}
