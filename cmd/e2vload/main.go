// Command e2vload is a closed-loop load generator for e2vserve: it
// discovers the served model's input shape from GET /statz, drives POST
// /predict from concurrent workers (optionally rate-limited, optionally
// carrying synthetic ground truth to exercise the quality monitor), and
// finishes by printing both the client-side latency picture and the
// server's own per-stage p99 attribution from /statz.
//
//	e2vload -addr http://localhost:9090 [-c 4] [-duration 10s] [-rps 0]
//	        [-actuals 0] [-seed 1]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"env2vec/internal/obs"
	"env2vec/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "e2vload:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("e2vload", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:9090", "base URL of the prediction service")
	conc := fs.Int("c", 4, "concurrent request workers")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	rps := fs.Float64("rps", 0, "target aggregate requests/second (0 = unthrottled)")
	actuals := fs.Float64("actuals", 0, "fraction of requests carrying synthetic ground truth (feeds the quality monitor)")
	seed := fs.Int64("seed", 1, "random seed for request generation")
	_ = fs.Parse(args)
	if *conc <= 0 {
		return fmt.Errorf("-c must be positive")
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	// Shape discovery: /statz tells us the model's feature arity and window,
	// so the generator needs no model file of its own.
	st, err := fetchStats(client, base)
	if err != nil {
		return err
	}
	if st.Model == "" || st.ModelIn <= 0 || st.ModelWindow <= 0 {
		return fmt.Errorf("%s serves no model yet (statz: model=%q in=%d window=%d)", base, st.Model, st.ModelIn, st.ModelWindow)
	}
	fmt.Fprintf(w, "target %s model=%s/v%d in=%d window=%d workers=%d duration=%s\n",
		base, st.Model, st.ModelVersion, st.ModelIn, st.ModelWindow, *conc, *duration)

	var tick <-chan time.Time
	if *rps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *rps))
		defer t.Stop()
		tick = t.C
	}
	latency := obs.NewRegistry().Histogram("client_latency_ms", "", obs.DefLatencyBuckets, nil)
	var ok, shed, failed atomic.Uint64
	var lastErr atomic.Value
	deadline := time.Now().Add(*duration)
	begin := time.Now()

	var wg sync.WaitGroup
	for g := 0; g < *conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(g)))
			for time.Now().Before(deadline) {
				if tick != nil {
					select {
					case <-tick:
					case <-time.After(time.Until(deadline)):
						return
					}
				}
				req := genRequest(rng, st.ModelIn, st.ModelWindow, *actuals)
				t0 := time.Now()
				code, err := postPredict(client, base, req)
				latency.Observe(obs.MS(time.Since(t0)))
				switch {
				case err != nil:
					failed.Add(1)
					lastErr.Store(err)
				case code == http.StatusOK:
					ok.Add(1)
				case code == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					failed.Add(1)
					lastErr.Store(fmt.Errorf("status %d", code))
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	total := ok.Load() + shed.Load() + failed.Load()
	if total == 0 {
		return fmt.Errorf("no requests completed")
	}
	qs := latency.Quantiles(0.50, 0.99)
	fmt.Fprintf(w, "sent %d requests in %s (%.1f req/s): %d ok, %d shed (429), %d failed\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), ok.Load(), shed.Load(), failed.Load())
	fmt.Fprintf(w, "client latency p50=%.2fms p99=%.2fms\n", qs[0], qs[1])
	if err, _ := lastErr.Load().(error); err != nil {
		fmt.Fprintf(w, "last failure: %v\n", err)
	}

	// The server's own attribution: where the tail went, stage by stage.
	st, err = fetchStats(client, base)
	if err != nil {
		return fmt.Errorf("final statz fetch: %w", err)
	}
	fmt.Fprintf(w, "server p50=%.2fms p99=%.2fms (queue_wait p99=%.2fms, linger p99=%.2fms, forward p99=%.2fms)\n",
		st.P50LatencyMS, st.P99LatencyMS, st.QueueWaitP99MS, st.LingerP99MS, st.ForwardP99MS)
	fmt.Fprintf(w, "server batches=%d max_batch_observed=%d rejected=%d\n",
		st.Batches, st.MaxBatchObserved, st.Rejected)
	if n := len(st.LatencyExemplars); n > 0 {
		ex := st.LatencyExemplars[n-1]
		fmt.Fprintf(w, "slowest-bucket exemplar: le=%s request_id=%s value=%.2fms\n", ex.LE, ex.RequestID, ex.Value)
	}
	return nil
}

// fetchStats decodes GET /statz.
func fetchStats(client *http.Client, base string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := client.Get(base + "/statz")
	if err != nil {
		return st, fmt.Errorf("statz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("statz: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("statz: decode: %w", err)
	}
	return st, nil
}

// genRequest draws one synthetic request matching the model's shape; with
// probability actuals it carries ground truth near the window mean, so a
// quality-enabled server gets observations to chew on.
func genRequest(rng *rand.Rand, in, window int, actuals float64) *serve.Request {
	req := &serve.Request{
		CF:      make([]float64, in),
		Window:  make([]float64, window),
		Testbed: "loadgen", SUT: "loadgen", Testcase: "load", Build: "B1",
	}
	for j := range req.CF {
		req.CF[j] = rng.NormFloat64()
	}
	for j := range req.Window {
		req.Window[j] = 50 + 5*rng.NormFloat64()
	}
	if actuals > 0 && rng.Float64() < actuals {
		a := 50 + 5*rng.NormFloat64()
		req.Actual = &a
	}
	return req
}

// postPredict sends one prediction request, returning the status code.
func postPredict(client *http.Client, base string, req *serve.Request) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	return resp.StatusCode, nil
}
