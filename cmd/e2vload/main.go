// Command e2vload is a closed-loop load generator for e2vserve (or an
// e2vproxy front tier): it discovers the served model's input shape from
// GET /statz, drives POST /predict from concurrent workers (optionally
// rate-limited, optionally carrying synthetic ground truth to exercise
// the quality monitor), and finishes by printing the client-side latency
// picture — per target when several are given — the server's own
// per-stage p99 attribution from /statz, and the slowest retained traces
// from GET /traces as indented span trees (-slow-traces).
//
//	e2vload -addr http://localhost:9090 [-c 4] [-duration 10s] [-rps 0]
//	        [-actuals 0] [-seed 1] [-envs 1]
//	e2vload -targets http://h1:9090,http://h2:9090 ...   # spread workers
//	e2vload -addr http://proxy:9080 -envs 32 ...         # through a proxy
//
// Besides JSON it speaks the binary wire protocol (-proto binary sends
// length-prefixed batch frames of -wire-batch requests; -proto stream
// opens one subscribe-mode connection per worker and drives lock-step
// window→prediction round trips). Both need -wire-targets: the wire
// addresses paired one-to-one with the HTTP targets, which still serve
// shape discovery (/statz) and the post-run attribution.
//
//	e2vload -addr http://h1:9090 -wire-targets h1:9091 -proto binary -wire-batch 8
//	e2vload -addr http://proxy:9080 -wire-targets proxy:9081 -proto stream
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"env2vec/internal/envmeta"
	"env2vec/internal/obs"
	"env2vec/internal/serve"
	"env2vec/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "e2vload:", err)
		os.Exit(1)
	}
}

// target is one service URL under load, with its own client-side counters
// so a fleet run reports per-backend throughput and tail.
type target struct {
	base             string // HTTP base URL (statz, traces, -proto json)
	wireAddr         string // wire host:port (-proto binary|stream); may be ""
	latency          *obs.Histogram
	ok, shed, failed atomic.Uint64
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("e2vload", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:9090", "base URL of the prediction service")
	targetsFlag := fs.String("targets", "", "comma-separated base URLs (overrides -addr); workers round-robin across them")
	proto := fs.String("proto", "json", "transport: json | binary (wire batch frames) | stream (wire subscribe mode)")
	wireTargets := fs.String("wire-targets", "", "comma-separated wire addresses (host:port), parallel to the HTTP targets; required for -proto binary|stream")
	wireBatch := fs.Int("wire-batch", 1, "requests per batch frame with -proto binary")
	conc := fs.Int("c", 4, "concurrent request workers")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	rps := fs.Float64("rps", 0, "target aggregate requests/second (0 = unthrottled)")
	actuals := fs.Float64("actuals", 0, "fraction of requests carrying synthetic ground truth (feeds the quality monitor)")
	envs := fs.Int("envs", 1, "distinct environment tuples to spread requests over (build varies)")
	slowTraces := fs.Int("slow-traces", 3, "slowest retained traces to print per target after the run (0 disables)")
	alertsURL := fs.String("alerts", "", "tsdbd base URL; after the run, fetch /alerts and fail if any alert is firing")
	seed := fs.Int64("seed", 1, "random seed for request generation")
	_ = fs.Parse(args)
	if *conc <= 0 {
		return fmt.Errorf("-c must be positive")
	}
	if *envs <= 0 {
		*envs = 1
	}
	var tgts []*target
	reg := obs.NewRegistry()
	raw := *targetsFlag
	if raw == "" {
		raw = *addr
	}
	for _, u := range strings.Split(raw, ",") {
		if u = strings.TrimSpace(u); u != "" {
			base := strings.TrimRight(u, "/")
			tgts = append(tgts, &target{
				base:    base,
				latency: reg.Histogram("client_latency_ms", "", obs.DefLatencyBuckets, obs.Labels{"target": base}),
			})
		}
	}
	if len(tgts) == 0 {
		return fmt.Errorf("no targets given")
	}
	switch *proto {
	case "json":
	case "binary", "stream":
		var addrs []string
		for _, a := range strings.Split(*wireTargets, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) != len(tgts) {
			return fmt.Errorf("-proto %s needs -wire-targets with %d address(es), got %d", *proto, len(tgts), len(addrs))
		}
		for i, t := range tgts {
			t.wireAddr = addrs[i]
		}
		if *wireBatch <= 0 {
			*wireBatch = 1
		}
	default:
		return fmt.Errorf("-proto must be json, binary, or stream (got %q)", *proto)
	}
	client := &http.Client{Timeout: 10 * time.Second}

	// Shape discovery: /statz tells us the model's feature arity and window,
	// so the generator needs no model file of its own. Any target will do —
	// a fleet serves one model; a proxy forwards /statz to a live backend.
	var st serve.Stats
	var err error
	for _, t := range tgts {
		if st, err = fetchStats(client, t.base); err == nil {
			break
		}
	}
	if err != nil {
		return err
	}
	if st.Model == "" || st.ModelIn <= 0 || st.ModelWindow <= 0 {
		return fmt.Errorf("target serves no model yet (statz: model=%q in=%d window=%d)", st.Model, st.ModelIn, st.ModelWindow)
	}
	fmt.Fprintf(w, "targets %d model=%s/v%d in=%d window=%d proto=%s workers=%d duration=%s\n",
		len(tgts), st.Model, st.ModelVersion, st.ModelIn, st.ModelWindow, *proto, *conc, *duration)

	var tick <-chan time.Time
	if *rps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *rps))
		defer t.Stop()
		tick = t.C
	}
	totalLatency := reg.Histogram("client_latency_all_ms", "", obs.DefLatencyBuckets, nil)
	var lastErr atomic.Value
	deadline := time.Now().Add(*duration)
	begin := time.Now()

	// observe records one latency sample (a request, a batch exchange, or a
	// stream round trip); count classifies one request's outcome.
	observe := func(tgt *target, ms float64) {
		tgt.latency.Observe(ms)
		totalLatency.Observe(ms)
	}
	count := func(tgt *target, code int, err error) {
		switch {
		case err != nil:
			tgt.failed.Add(1)
			lastErr.Store(err)
		case code == http.StatusOK:
			tgt.ok.Add(1)
		case code == http.StatusTooManyRequests:
			tgt.shed.Add(1)
		default:
			tgt.failed.Add(1)
			lastErr.Store(fmt.Errorf("status %d", code))
		}
	}
	// pace blocks for the rate limiter; false means the deadline passed.
	pace := func() bool {
		if tick == nil {
			return true
		}
		select {
		case <-tick:
			return true
		case <-time.After(time.Until(deadline)):
			return false
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < *conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tgt := tgts[g%len(tgts)]
			rng := rand.New(rand.NewSource(*seed + int64(g)))
			switch *proto {
			case "binary":
				wireWorker(tgt, rng, st, deadline, pace, observe, count, *wireBatch, *actuals, *envs)
			case "stream":
				streamWorker(tgt, rng, st, deadline, pace, observe, count, *actuals, *envs, g)
			default:
				for time.Now().Before(deadline) {
					if !pace() {
						return
					}
					req := genRequest(rng, st.ModelIn, st.ModelWindow, *actuals, *envs)
					t0 := time.Now()
					code, err := postPredict(client, tgt.base, req)
					observe(tgt, obs.MS(time.Since(t0)))
					count(tgt, code, err)
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	var ok, shed, failed uint64
	for _, t := range tgts {
		ok += t.ok.Load()
		shed += t.shed.Load()
		failed += t.failed.Load()
	}
	total := ok + shed + failed
	if total == 0 {
		return fmt.Errorf("no requests completed")
	}
	qs := totalLatency.Quantiles(0.50, 0.99)
	fmt.Fprintf(w, "sent %d requests in %s (%.1f req/s): %d ok, %d shed (429), %d failed\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), ok, shed, failed)
	fmt.Fprintf(w, "client latency p50=%.2fms p99=%.2fms\n", qs[0], qs[1])
	if len(tgts) > 1 {
		for _, t := range tgts {
			n := t.ok.Load() + t.shed.Load() + t.failed.Load()
			tq := t.latency.Quantiles(0.50, 0.99)
			fmt.Fprintf(w, "target %s: %d req (%.1f req/s), %d ok, %d shed, %d failed, p50=%.2fms p99=%.2fms\n",
				t.base, n, float64(n)/elapsed.Seconds(), t.ok.Load(), t.shed.Load(), t.failed.Load(), tq[0], tq[1])
		}
	}
	if err, _ := lastErr.Load().(error); err != nil {
		fmt.Fprintf(w, "last failure: %v\n", err)
	}

	// The server's own attribution: where the tail went, stage by stage,
	// per target when several are under load.
	for _, t := range tgts {
		st, err := fetchStats(client, t.base)
		if err != nil {
			fmt.Fprintf(w, "target %s: final statz fetch failed: %v\n", t.base, err)
			continue
		}
		prefix := "server"
		if len(tgts) > 1 {
			prefix = "server " + t.base
		}
		fmt.Fprintf(w, "%s p50=%.2fms p99=%.2fms (queue_wait p99=%.2fms, linger p99=%.2fms, forward p99=%.2fms)\n",
			prefix, st.P50LatencyMS, st.P99LatencyMS, st.QueueWaitP99MS, st.LingerP99MS, st.ForwardP99MS)
		fmt.Fprintf(w, "%s batches=%d max_batch_observed=%d rejected=%d\n",
			prefix, st.Batches, st.MaxBatchObserved, st.Rejected)
		if *slowTraces > 0 {
			printSlowTraces(w, client, t.base, prefix, *slowTraces)
		}
	}
	if *alertsURL != "" {
		return checkAlerts(w, client, *alertsURL)
	}
	return nil
}

// wireWorker drives -proto binary: one wire connection per worker, batch
// frames of wireBatch requests, redialing after transport errors. One
// latency sample covers one batch exchange; outcomes count per request.
func wireWorker(tgt *target, rng *rand.Rand, st serve.Stats, deadline time.Time,
	pace func() bool, observe func(*target, float64), count func(*target, int, error),
	wireBatch int, actuals float64, envs int) {
	var c *wire.Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	for time.Now().Before(deadline) {
		if !pace() {
			return
		}
		if c == nil {
			var err error
			if c, err = wire.Dial(tgt.wireAddr, wire.ClientConfig{Timeout: 10 * time.Second}); err != nil {
				count(tgt, 0, err)
				time.Sleep(50 * time.Millisecond)
				continue
			}
		}
		reqs := make([]*serve.Request, wireBatch)
		for i := range reqs {
			reqs[i] = genRequest(rng, st.ModelIn, st.ModelWindow, actuals, envs)
		}
		t0 := time.Now()
		replies, err := c.Predict(reqs)
		observe(tgt, obs.MS(time.Since(t0)))
		if err != nil {
			count(tgt, 0, err)
			c.Close()
			c = nil
			continue
		}
		for _, rep := range replies {
			count(tgt, rep.Status, nil)
		}
	}
}

// streamWorker drives -proto stream: one subscribe-mode connection pinned
// to one environment, lock-step window→prediction round trips (each one
// latency sample), resubscribing after errors.
func streamWorker(tgt *target, rng *rand.Rand, st serve.Stats, deadline time.Time,
	pace func() bool, observe func(*target, float64), count func(*target, int, error),
	actuals float64, envs int, worker int) {
	env := envmeta.Environment{
		Testbed: "loadgen", SUT: "loadgen", Testcase: "load",
		Build: fmt.Sprintf("B%d", 1+worker%envs),
	}
	for time.Now().Before(deadline) {
		c, err := wire.Dial(tgt.wireAddr, wire.ClientConfig{Timeout: 10 * time.Second})
		if err != nil {
			count(tgt, 0, err)
			time.Sleep(50 * time.Millisecond)
			continue
		}
		stm, err := c.Subscribe(env, "")
		if err != nil {
			count(tgt, 0, err)
			c.Close()
			time.Sleep(50 * time.Millisecond)
			continue
		}
		// A wedged peer cannot park the worker past the run.
		_ = stm.SetDeadline(deadline.Add(10 * time.Second))
		for time.Now().Before(deadline) {
			if !pace() {
				break
			}
			req := genRequest(rng, st.ModelIn, st.ModelWindow, actuals, envs)
			wnd := wire.Window{Seq: stm.NextSeq(), CF: req.CF, Window: req.Window, Actual: req.Actual}
			t0 := time.Now()
			if err := stm.Send(wnd); err != nil {
				count(tgt, 0, err)
				break
			}
			p, err := stm.Recv()
			observe(tgt, obs.MS(time.Since(t0)))
			if err != nil {
				count(tgt, 0, err)
				break
			}
			count(tgt, p.Status, nil)
		}
		stm.Close()
	}
}

// checkAlerts fetches the monitoring plane's active alerts and turns a
// firing alert into a non-zero exit — so a load run doubles as an SLO
// gate in scripts and CI.
func checkAlerts(w io.Writer, client *http.Client, base string) error {
	resp, err := client.Get(strings.TrimRight(base, "/") + "/alerts")
	if err != nil {
		return fmt.Errorf("alerts: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("alerts: status %d", resp.StatusCode)
	}
	var payload struct {
		Data []struct {
			Name        string            `json:"name"`
			State       string            `json:"state"`
			Labels      map[string]string `json:"labels"`
			Annotations map[string]string `json:"annotations"`
			Value       float64           `json:"value"`
		} `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return fmt.Errorf("alerts: decode: %w", err)
	}
	firing := 0
	for _, a := range payload.Data {
		if a.State == "firing" {
			firing++
		}
		fmt.Fprintf(w, "alert %s %s value=%.3g %s\n", a.State, a.Name, a.Value, a.Annotations["summary"])
	}
	if firing > 0 {
		return fmt.Errorf("%d alert(s) firing", firing)
	}
	fmt.Fprintf(w, "alerts: %d active, none firing\n", len(payload.Data))
	return nil
}

// printSlowTraces fetches the target's retained traces and prints the n
// slowest as indented span trees — the per-request attribution that
// replaced the old slowest-bucket exemplar line. A target without a
// /traces endpoint (old binary) is skipped quietly.
func printSlowTraces(w io.Writer, client *http.Client, base, prefix string, n int) {
	resp, err := client.Get(base + "/traces?limit=0")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var tl obs.TraceList
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		return
	}
	sort.Slice(tl.Traces, func(i, j int) bool { return tl.Traces[i].DurationMS > tl.Traces[j].DurationMS })
	if len(tl.Traces) > n {
		tl.Traces = tl.Traces[:n]
	}
	for _, sum := range tl.Traces {
		tResp, err := client.Get(base + "/traces/" + sum.TraceID)
		if err != nil {
			continue
		}
		var tr obs.Trace
		err = json.NewDecoder(tResp.Body).Decode(&tr)
		tResp.Body.Close()
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "%s slow trace %s: %.2fms outcome=%s spans=%d\n",
			prefix, tr.TraceID, tr.DurationMS, tr.Outcome, len(tr.Spans))
		printSpanTree(w, tr.Spans, "", 1)
	}
}

// printSpanTree renders spans parented on parentID, indented one level per
// generation. Spans whose parent is outside the trace (the caller's span)
// surface at the root level.
func printSpanTree(w io.Writer, spans []obs.Span, parentID string, depth int) {
	known := make(map[string]bool, len(spans))
	for _, sp := range spans {
		known[sp.SpanID] = true
	}
	for _, sp := range spans {
		local := known[sp.ParentID]
		if (parentID == "" && local) || (parentID != "" && sp.ParentID != parentID) {
			continue
		}
		fmt.Fprintf(w, "%s%s %.2fms %s\n", strings.Repeat("  ", depth), sp.Name, sp.DurationMS, attrLine(sp.Attrs))
		printSpanTree(w, spans, sp.SpanID, depth+1)
	}
}

// attrLine renders span attrs as stable k=v pairs.
func attrLine(attrs map[string]string) string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+attrs[k])
	}
	return strings.Join(parts, " ")
}

// fetchStats decodes GET /statz.
func fetchStats(client *http.Client, base string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := client.Get(base + "/statz")
	if err != nil {
		return st, fmt.Errorf("statz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("statz: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("statz: decode: %w", err)
	}
	return st, nil
}

// genRequest draws one synthetic request matching the model's shape; with
// probability actuals it carries ground truth near the window mean, so a
// quality-enabled server gets observations to chew on. envs > 1 spreads
// requests over that many distinct environment tuples (the build varies),
// which is what exercises a proxy's affinity routing.
func genRequest(rng *rand.Rand, in, window int, actuals float64, envs int) *serve.Request {
	req := &serve.Request{
		CF:      make([]float64, in),
		Window:  make([]float64, window),
		Testbed: "loadgen", SUT: "loadgen", Testcase: "load",
		Build: fmt.Sprintf("B%d", 1+rng.Intn(envs)),
	}
	for j := range req.CF {
		req.CF[j] = rng.NormFloat64()
	}
	for j := range req.Window {
		req.Window[j] = 50 + 5*rng.NormFloat64()
	}
	if actuals > 0 && rng.Float64() < actuals {
		a := 50 + 5*rng.NormFloat64()
		req.Actual = &a
	}
	return req
}

// postPredict sends one prediction request, returning the status code.
func postPredict(client *http.Client, base string, req *serve.Request) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	return resp.StatusCode, nil
}
