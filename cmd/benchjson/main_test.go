package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: env2vec/internal/infer
cpu: some CPU
BenchmarkForwardTape_B8W20-8     	    2000	    612345 ns/op	  345678 B/op	    4321 allocs/op
BenchmarkForwardInfer_B8W20-8    	   20000	     52340 ns/op	      96 B/op	       2 allocs/op
BenchmarkNoMem-4                 	    1000	      1234 ns/op
PASS
ok  	env2vec/internal/infer	3.456s
`

func TestConvert(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var got []Result
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	want := []Result{
		{Op: "ForwardTape_B8W20", Iterations: 2000, NsPerOp: 612345, BytesPerOp: 345678, AllocsPerOp: 4321},
		{Op: "ForwardInfer_B8W20", Iterations: 20000, NsPerOp: 52340, BytesPerOp: 96, AllocsPerOp: 2},
		{Op: "NoMem", Iterations: 1000, NsPerOp: 1234, BytesPerOp: -1, AllocsPerOp: -1},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestCompare(t *testing.T) {
	baseline := []Result{
		{Op: "ForwardInfer_B8W20", NsPerOp: 500000, AllocsPerOp: 1},
		{Op: "ForwardTape_B8W20", NsPerOp: 4000000, AllocsPerOp: 9000},
		{Op: "Removed", NsPerOp: 100, AllocsPerOp: 0},
	}
	cases := []struct {
		name      string
		fresh     []Result
		maxPct    float64
		regressed []string
		wantInLog string
	}{
		{
			name: "improvement passes",
			fresh: []Result{
				{Op: "ForwardInfer_B8W20", NsPerOp: 200000, AllocsPerOp: 1},
				{Op: "ForwardTape_B8W20", NsPerOp: 4100000, AllocsPerOp: 9000},
			},
			maxPct:    10,
			wantInLog: "-60.0%",
		},
		{
			name: "within tolerance passes",
			fresh: []Result{
				{Op: "ForwardInfer_B8W20", NsPerOp: 540000, AllocsPerOp: 1},
			},
			maxPct: 10,
		},
		{
			name: "ns regression fails",
			fresh: []Result{
				{Op: "ForwardInfer_B8W20", NsPerOp: 560000, AllocsPerOp: 1},
			},
			maxPct:    10,
			regressed: []string{"ForwardInfer_B8W20"},
			wantInLog: "REGRESSION",
		},
		{
			name: "alloc growth fails even when ns is fine",
			fresh: []Result{
				{Op: "ForwardInfer_B8W20", NsPerOp: 500000, AllocsPerOp: 3},
			},
			maxPct:    10,
			regressed: []string{"ForwardInfer_B8W20"},
			wantInLog: "allocs 1 -> 3",
		},
		{
			name: "new benchmark never fails the gate",
			fresh: []Result{
				{Op: "ForwardInfer32_B8W20", NsPerOp: 999999999, AllocsPerOp: 50},
			},
			maxPct:    10,
			wantInLog: "no baseline",
		},
		{
			name: "no allocs measured skips the alloc gate",
			fresh: []Result{
				{Op: "Removed", NsPerOp: 100, AllocsPerOp: -1},
			},
			maxPct: 10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var log bytes.Buffer
			got := compare(baseline, tc.fresh, tc.maxPct, &log)
			if len(got) != len(tc.regressed) {
				t.Fatalf("regressed %v, want %v\nlog:\n%s", got, tc.regressed, log.String())
			}
			for i := range got {
				if got[i] != tc.regressed[i] {
					t.Fatalf("regressed %v, want %v", got, tc.regressed)
				}
			}
			if tc.wantInLog != "" && !strings.Contains(log.String(), tc.wantInLog) {
				t.Fatalf("log missing %q:\n%s", tc.wantInLog, log.String())
			}
		})
	}
}

func TestCompareReportsRemoved(t *testing.T) {
	var log bytes.Buffer
	got := compare([]Result{{Op: "Gone", NsPerOp: 10}}, nil, 10, &log)
	if len(got) != 0 {
		t.Fatalf("removed benchmark must not regress the gate: %v", got)
	}
	if !strings.Contains(log.String(), "baseline only") {
		t.Fatalf("log missing removed-benchmark note:\n%s", log.String())
	}
}

func TestConvertEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader("no benchmarks here\n"), &out); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(out.String()); s != "[]" {
		t.Fatalf("want empty array, got %q", s)
	}
}
