package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: env2vec/internal/infer
cpu: some CPU
BenchmarkForwardTape_B8W20-8     	    2000	    612345 ns/op	  345678 B/op	    4321 allocs/op
BenchmarkForwardInfer_B8W20-8    	   20000	     52340 ns/op	      96 B/op	       2 allocs/op
BenchmarkNoMem-4                 	    1000	      1234 ns/op
PASS
ok  	env2vec/internal/infer	3.456s
`

func TestConvert(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var got []Result
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	want := []Result{
		{Op: "ForwardTape_B8W20", Iterations: 2000, NsPerOp: 612345, BytesPerOp: 345678, AllocsPerOp: 4321},
		{Op: "ForwardInfer_B8W20", Iterations: 20000, NsPerOp: 52340, BytesPerOp: 96, AllocsPerOp: 2},
		{Op: "NoMem", Iterations: 1000, NsPerOp: 1234, BytesPerOp: -1, AllocsPerOp: -1},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestConvertEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader("no benchmarks here\n"), &out); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(out.String()); s != "[]" {
		t.Fatalf("want empty array, got %q", s)
	}
}
