// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array on stdout, one object per benchmark:
//
//	[{"op":"ForwardInfer_B8W20","ns_per_op":52340.0,"bytes_per_op":96,"allocs_per_op":2}]
//
// docs/reproduce.sh uses it to commit machine-readable before/after numbers
// for the fused inference path (docs/outputs/BENCH_infer.json); any bench
// output works. Lines that are not benchmark results are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Op is the benchmark name without the "Benchmark" prefix or the
	// "-GOMAXPROCS" suffix.
	Op         string  `json:"op"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -1 when the run lacked -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Op: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	// Remaining fields come in value/unit pairs: 52340 ns/op 96 B/op 2 allocs/op.
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(v, 64); err != nil {
				return Result{}, false
			}
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(v, 10, 64); err != nil {
				return Result{}, false
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(v, 10, 64); err != nil {
				return Result{}, false
			}
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}

func convert(in io.Reader, out io.Writer) error {
	results := []Result{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	if err := convert(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
