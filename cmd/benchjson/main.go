// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array on stdout, one object per benchmark:
//
//	[{"op":"ForwardInfer_B8W20","ns_per_op":52340.0,"bytes_per_op":96,"allocs_per_op":2}]
//
// docs/reproduce.sh uses it to commit machine-readable before/after numbers
// for the fused inference path (docs/outputs/BENCH_infer.json); any bench
// output works. Lines that are not benchmark results are ignored.
//
// With -compare old.json it additionally diffs the fresh numbers against a
// committed baseline and exits nonzero when any benchmark present in both
// regressed by more than -max-regress percent on ns/op, or grew its
// allocs/op at all. That makes the committed BENCH_*.json files an enforced
// perf gate, not just a record:
//
//	go test -bench ... | benchjson -compare docs/outputs/BENCH_infer.json -max-regress 10 > new.json
//
// Benchmarks only present on one side (added or removed ops) are reported
// but never fail the gate, so adding a benchmark does not require
// regenerating the baseline in the same commit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Op is the benchmark name without the "Benchmark" prefix or the
	// "-GOMAXPROCS" suffix.
	Op         string  `json:"op"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -1 when the run lacked -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Op: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	// Remaining fields come in value/unit pairs: 52340 ns/op 96 B/op 2 allocs/op.
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(v, 64); err != nil {
				return Result{}, false
			}
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(v, 10, 64); err != nil {
				return Result{}, false
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(v, 10, 64); err != nil {
				return Result{}, false
			}
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}

func parse(in io.Reader) ([]Result, error) {
	results := []Result{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	return results, sc.Err()
}

func convert(in io.Reader, out io.Writer) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// compare diffs fresh results against a baseline. It writes one line per
// shared benchmark to log and returns the ops that regressed: ns/op more
// than maxRegressPct above baseline, or allocs/op above baseline (when both
// runs measured allocs). Ops present on only one side are noted but never
// regressions.
func compare(baseline, fresh []Result, maxRegressPct float64, log io.Writer) []string {
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		base[r.Op] = r
	}
	var regressed []string
	seen := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		seen[r.Op] = true
		old, ok := base[r.Op]
		if !ok {
			fmt.Fprintf(log, "benchjson: %s: new benchmark (no baseline), %.0f ns/op\n", r.Op, r.NsPerOp)
			continue
		}
		deltaPct := (r.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		status := "ok"
		switch {
		case deltaPct > maxRegressPct:
			status = fmt.Sprintf("REGRESSION (limit +%.0f%%)", maxRegressPct)
			regressed = append(regressed, r.Op)
		case old.AllocsPerOp >= 0 && r.AllocsPerOp > old.AllocsPerOp:
			status = fmt.Sprintf("REGRESSION (allocs %d -> %d)", old.AllocsPerOp, r.AllocsPerOp)
			regressed = append(regressed, r.Op)
		}
		fmt.Fprintf(log, "benchjson: %s: %.0f -> %.0f ns/op (%+.1f%%) %s\n",
			r.Op, old.NsPerOp, r.NsPerOp, deltaPct, status)
	}
	for _, r := range baseline {
		if !seen[r.Op] {
			fmt.Fprintf(log, "benchjson: %s: present in baseline only (benchmark removed?)\n", r.Op)
		}
	}
	return regressed
}

func loadBaseline(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}

func main() {
	comparePath := flag.String("compare", "", "baseline BENCH_*.json to diff against; regressions fail the run")
	maxRegress := flag.Float64("max-regress", 10, "allowed ns/op regression vs -compare baseline, percent")
	flag.Parse()

	fresh, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fresh); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *comparePath == "" {
		return
	}
	baseline, err := loadBaseline(*comparePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if regressed := compare(baseline, fresh, *maxRegress, os.Stderr); len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed: %s\n",
			len(regressed), strings.Join(regressed, ", "))
		os.Exit(2)
	}
}
