// Command telecombench regenerates the §4.2/§4.3 experiments on the
// synthetic carrier-grade testing corpus: Figure 1 (per-chain linear
// models), Figures 3–4 (single-model vs per-chain characterization),
// Table 5 (alarm quality), Figure 6 (environment-embedding clusters),
// Table 6 (unseen environments), Table 7 (coverage analysis), and the §6
// cost report.
//
// Usage:
//
//	telecombench [-only fig1|fig3|fig4|table5|fig6|table6|table7|cost] [-quick] [-csv DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"env2vec/internal/experiments"
	"env2vec/internal/stats"
)

func main() {
	only := flag.String("only", "", "run a single experiment: fig1, fig3, fig4, table5, fig6, table6, table7, emholdout, ablation, cost")
	quick := flag.Bool("quick", false, "use unit-test-scale corpus (seconds, not minutes)")
	slow := flag.Bool("slow", false, "include RFReg/FNN/SVR in the per-chain comparison")
	csvDir := flag.String("csv", "", "also write figure data as CSV files into this directory")
	flag.Parse()

	opts := experiments.DefaultTelecomOptions()
	if *quick {
		opts = experiments.QuickTelecomOptions()
	}
	opts.IncludeSlow = *slow
	lab := experiments.NewLab(opts)
	start := time.Now()

	want := func(name string) bool { return *only == "" || *only == name }
	var csvWriter func(name, content string)
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		csvWriter = func(name, content string) {
			if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(content), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	if want("fig1") {
		runFigure1(lab, csvWriter)
	}
	var f34 *experiments.Figure34Result
	if want("fig3") || want("fig4") {
		f34 = lab.RunFigure34()
	}
	if want("fig3") {
		runFigure3(f34, csvWriter)
	}
	if want("fig4") {
		runFigure4(f34, csvWriter)
	}
	if want("table5") {
		fmt.Println("=== Table 5 — alarm quality on fault executions ===")
		fmt.Println(experiments.RenderTable5(lab.RunTable5()))
	}
	if want("fig6") {
		runFigure6(lab, csvWriter)
	}
	if want("table6") {
		fmt.Println("=== Table 6 — unseen environments (§4.3) ===")
		fmt.Println(experiments.RenderTable5(lab.RunTable6()))
	}
	if want("table7") {
		runTable7(lab)
	}
	if want("emholdout") {
		fmt.Println("=== §6 hold-out analysis — EM feature importance ===")
		fmt.Printf("%-10s %-10s %-10s %s\n", "feature", "base MAE", "blind MAE", "delta%")
		for _, r := range lab.RunEMHoldout() {
			fmt.Printf("%-10s %-10.3f %-10.3f %+.1f%%\n", r.Feature, r.BaseMAE, r.BlindMAE, r.DeltaPct)
		}
		fmt.Println()
	}
	if want("ablation") {
		fmt.Println("=== §3.2/§6 architecture ablation (pooled KDN task) ===")
		aopts := experiments.DefaultTable4Options()
		aopts.Seeds = 1
		// The ablation compares variants against each other, so a reduced
		// (but equal) budget per variant keeps the comparison fair while
		// fitting in the harness run.
		aopts.Epochs = 150
		aopts.Batch = 32
		aopts.LR = 0.002
		if *quick {
			aopts = experiments.QuickTable4Options()
		}
		ab, err := experiments.RunHeadAblation(aopts)
		if err != nil {
			fatal(err)
		}
		for _, v := range ab.Variants {
			fmt.Printf("  %s\n", v)
		}
		fmt.Println()
	}
	if want("cost") {
		cost, err := lab.RunCostReport()
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== §6 cost report ===")
		fmt.Printf("ridge training per chain: %.3fs (paper: <1s)\n", cost.RidgeSecondsPerChain)
		fmt.Printf("Env2Vec pooled training:  %.1fs (paper: ~30min at full scale)\n", cost.PooledTrainSeconds)
		fmt.Printf("model size: %d bytes (paper: <10MB)\n", cost.ModelBytes)
		fmt.Printf("parameters: %d\n\n", cost.Parameters)
	}
	fmt.Printf("completed in %s\n", time.Since(start).Round(time.Second))
}

func runFigure1(lab *experiments.Lab, csv func(string, string)) {
	res := lab.RunFigure1()
	fmt.Println("=== Figure 1 — per-chain linear-regression study ===")
	red := 0
	for _, id := range res.ChainIDs {
		if res.Red[id] {
			red++
		}
	}
	fmt.Printf("chains: %d, with residuals >10 CPU points: %d\n", len(res.ChainIDs), red)
	// Weight-diversity summary: per-feature std of coefficients across
	// chains — large values are the heatmap's visual variety.
	fmt.Println("coefficient spread across chains (symlog units):")
	for j, name := range res.FeatureNames {
		row := make([]float64, res.Weights.Cols)
		copy(row, res.Weights.Row(j))
		fmt.Printf("  %-20s std=%.3f\n", name, stats.StdDev(row))
	}
	fmt.Println()
	if csv != nil {
		var b strings.Builder
		b.WriteString("feature," + strings.Join(res.ChainIDs, ",") + "\n")
		for j, name := range res.FeatureNames {
			b.WriteString(name)
			for c := 0; c < res.Weights.Cols; c++ {
				fmt.Fprintf(&b, ",%.4f", res.Weights.At(j, c))
			}
			b.WriteString("\n")
		}
		csv("figure1_heatmap.csv", b.String())
		var r strings.Builder
		r.WriteString("chain,min,q1,median,q3,max,red\n")
		for _, id := range res.ChainIDs {
			bx := res.Residuals[id]
			fmt.Fprintf(&r, "%s,%.3f,%.3f,%.3f,%.3f,%.3f,%v\n", id, bx.Min, bx.Q1, bx.Median, bx.Q3, bx.Max, res.Red[id])
		}
		csv("figure1_residuals.csv", r.String())
	}
}

func runFigure3(res *experiments.Figure34Result, csv func(string, string)) {
	fmt.Println("=== Figure 3 — MAE improvement over per-chain Ridge_ts ===")
	summary := func(name string, imp []float64) {
		pos := 0
		for _, v := range imp {
			if v > 0 {
				pos++
			}
		}
		fmt.Printf("%-9s improved on %d/%d chains, mean improvement %.3f, best %.3f, worst %.3f\n",
			name, pos, len(imp), stats.Mean(imp), imp[len(imp)-1], imp[0])
	}
	summary("Env2Vec", res.ImprovementEnv2Vec)
	summary("RFNN_all", res.ImprovementRFNNAll)
	fmt.Println("\nSummary table (mean over all chains):")
	methods := make([]string, 0, len(res.Summary))
	for m := range res.Summary {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	for _, m := range methods {
		fmt.Printf("  %s\n", res.Summary[m])
	}
	fmt.Println()
	if csv != nil {
		var b strings.Builder
		b.WriteString("rank,env2vec_improvement,rfnn_all_improvement\n")
		for i := range res.ImprovementEnv2Vec {
			fmt.Fprintf(&b, "%d,%.4f,%.4f\n", i, res.ImprovementEnv2Vec[i], res.ImprovementRFNNAll[i])
		}
		csv("figure3_improvements.csv", b.String())
	}
}

func runFigure4(res *experiments.Figure34Result, csv func(string, string)) {
	fmt.Println("=== Figure 4 — per-chain MAE CDF ===")
	cdf := experiments.Figure4CDF(res)
	methods := make([]string, 0, len(cdf))
	for m := range cdf {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	for _, m := range methods {
		pts := cdf[m]
		q := func(f float64) float64 {
			idx := int(f * float64(len(pts)-1))
			return pts[idx][0]
		}
		fmt.Printf("  %-9s MAE p50=%.2f p90=%.2f p100=%.2f\n", m, q(0.5), q(0.9), q(1))
	}
	fmt.Println()
	if csv != nil {
		var b strings.Builder
		b.WriteString("method,mae,cdf\n")
		for _, m := range methods {
			for _, p := range cdf[m] {
				fmt.Fprintf(&b, "%s,%.4f,%.4f\n", m, p[0], p[1])
			}
		}
		csv("figure4_cdf.csv", b.String())
	}
}

func runFigure6(lab *experiments.Lab, csv func(string, string)) {
	res, err := lab.RunFigure6()
	if err != nil {
		fatal(err)
	}
	fmt.Println("=== Figure 6 — environment embeddings (2-D PCA) ===")
	fmt.Printf("environments: %d, build-type separation ratio: %.2f (>1 ⇒ clustered), explained variance: %.0f%%+%.0f%%\n",
		len(res.Points), res.SeparationRatio, 100*res.Explained[0], 100*res.Explained[1])
	byType := map[string]int{}
	for _, p := range res.Points {
		byType[p.BuildType]++
	}
	fmt.Printf("build types: %v\n\n", byType)
	if csv != nil {
		var b strings.Builder
		b.WriteString("env,build_type,x,y\n")
		for _, p := range res.Points {
			fmt.Fprintf(&b, "%s,%s,%.4f,%.4f\n", p.Env, p.BuildType, p.X, p.Y)
		}
		csv("figure6_embeddings.csv", b.String())
	}
}

func runTable7(lab *experiments.Lab) {
	res := lab.RunTable7()
	fmt.Println("=== Table 7 — under-performing case vs the rest (γ=1) ===")
	fmt.Printf("%-44s %-6s %-10s %s\n", "execution", "A_T", "#examples", "coverage%")
	for _, r := range res.Rows {
		fmt.Printf("%-44s %-6.3f %-10d %.3f\n", r.Env.String(), r.AT, r.TestbedExamples, r.CoveragePct)
	}
	fmt.Printf("\nworst: A_T=%.3f with %d examples (%.3f%%); rest: mean A_T=%.3f with %.0f examples (%.3f%%)\n\n",
		res.WorstAT, res.WorstExamples, res.WorstCoveragePct,
		res.RestMeanAT, res.RestMeanExamples, res.RestMeanCovPct)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "telecombench:", err)
	os.Exit(1)
}
