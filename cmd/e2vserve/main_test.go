package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "e2vserve")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestServeRequiresOneSource(t *testing.T) {
	bin := buildServe(t)
	for _, args := range [][]string{
		{}, // neither
		{"-model", "x.model", "-registry", "http://localhost:8080"}, // both
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Fatalf("args %v: err=%v out=%q", args, err, out)
		}
		if !strings.Contains(string(out), "exactly one of -registry or -model") {
			t.Fatalf("args %v: %q", args, out)
		}
	}
}

func TestServeRejectsMissingSnapshot(t *testing.T) {
	bin := buildServe(t)
	out, err := exec.Command(bin, "-model", filepath.Join(t.TempDir(), "nope.model")).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("missing snapshot: err=%v out=%q", err, out)
	}
}
