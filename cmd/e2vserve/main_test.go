package main

import (
	"net/http/httptest"

	"env2vec/internal/modelserver"
	"env2vec/internal/nn"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// scrape polls url until the daemon answers, returning the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return string(body)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("scraping %s never succeeded (last err %v)", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "e2vserve")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestServeRequiresOneSource(t *testing.T) {
	bin := buildServe(t)
	for _, tc := range []struct {
		args []string
		want string
	}{
		{nil, "one of -model, -registry, or -registry-dir is required"},
		{[]string{"-model", "x.model", "-registry", "http://localhost:8080"}, "-model is exclusive"},
		{[]string{"-model", "x.model", "-registry-dir", "/tmp/mirror"}, "-model is exclusive"},
	} {
		out, err := exec.Command(bin, tc.args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Fatalf("args %v: err=%v out=%q", tc.args, err, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Fatalf("args %v: %q", tc.args, out)
		}
	}
}

func TestServeRejectsMissingSnapshot(t *testing.T) {
	bin := buildServe(t)
	out, err := exec.Command(bin, "-model", filepath.Join(t.TempDir(), "nope.model")).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("missing snapshot: err=%v out=%q", err, out)
	}
}

// TestServeMetricsScrape is the end-to-end acceptance check: a freshly
// booted daemon (no model yet — the registry is unreachable) serves a
// Prometheus /metrics page carrying the serve instrumentation.
func TestServeMetricsScrape(t *testing.T) {
	bin := buildServe(t)
	port := freePort(t)
	cmd := exec.Command(bin,
		"-registry", "http://127.0.0.1:1", // nothing listens; polls fail transiently
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-poll", "100ms", "-log-level", "error")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	body := scrape(t, fmt.Sprintf("http://127.0.0.1:%d/metrics", port))
	for _, want := range []string{
		"# TYPE env2vec_serve_requests_total counter",
		"env2vec_serve_queue_capacity 256",
		`env2vec_serve_stage_latency_ms_bucket{stage="forward"`,
		"modelserver_watcher_polls_total",
		"# TYPE env2vec_quality_observations_total counter",
		"env2vec_quality_alarms_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, body)
		}
	}
}

// TestServeRegistryMirror boots the daemon in -registry-dir mirror mode
// against a live primary: the replica counters appear on /metrics, the
// mirror directory fills with durable shard logs, and a restarted daemon
// warm-starts from the mirror with the primary gone.
func TestServeRegistryMirror(t *testing.T) {
	reg := modelserver.NewRegistry()
	primary := httptest.NewServer(&modelserver.Handler{Registry: reg})
	defer primary.Close()
	p := nn.NewParam("w", 2, 2)
	if _, err := reg.Publish("env2vec", nn.TakeSnapshot([]*nn.Param{p}, nil), 1); err != nil {
		t.Fatal(err)
	}

	bin := buildServe(t)
	mirror := filepath.Join(t.TempDir(), "mirror")
	start := func(extra ...string) *exec.Cmd {
		port := freePort(t)
		args := append([]string{
			"-registry-dir", mirror,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-poll", "100ms", "-log-level", "error",
		}, extra...)
		cmd := exec.Command(bin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		deadline := time.Now().Add(10 * time.Second)
		for {
			body := scrape(t, fmt.Sprintf("http://127.0.0.1:%d/metrics", port))
			if strings.Contains(body, "modelserver_replica_syncs_total") || len(extra) == 0 {
				if strings.Contains(body, "env2vec_registry_recovered_records 0") {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon never exposed registry metrics:\n%s", body)
			}
			time.Sleep(50 * time.Millisecond)
		}
		return cmd
	}

	first := start("-registry", primary.URL)
	// The mirror converges: its shard logs hold the published version.
	deadline := time.Now().Add(10 * time.Second)
	for {
		local, err := modelserver.OpenRegistry(modelserver.WithDir(mirror))
		if err == nil {
			v, lerr := local.Latest("env2vec")
			local.Close()
			if lerr == nil && v.Number == 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirror never converged (last err %v)", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Restart without the primary: the daemon boots from the mirror alone.
	_ = first.Process.Kill()
	_, _ = first.Process.Wait()
	primary.Close()
	start()
}
