// End-to-end test of the -precision flag: two daemons boot from the same
// snapshot, one float64 and one float32, and must agree on /predict within
// the documented float32 tolerance over BOTH transports (JSON HTTP and the
// binary wire protocol), while /statz and /metrics report which numeric
// path each daemon is on.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/serve"
	"env2vec/internal/wire"
)

// writeServingSnapshot builds a small deterministic model with serving
// artifacts attached and saves it where a daemon's -model flag can load it.
func writeServingSnapshot(t *testing.T, path string) {
	t.Helper()
	cfg := core.Config{In: 3, Hidden: 9, GRUHidden: 5, EmbedDim: 3, Window: 4, Seed: 7}
	schema := envmeta.NewSchema()
	schema.Observe(envmeta.Environment{Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "S01"})
	schema.Observe(envmeta.Environment{Testbed: "tb2", SUT: "fw", Testcase: "scale", Build: "S02"})
	schema.Freeze()
	m := core.New(cfg, schema)
	snap := m.Snapshot()
	std := &dataset.Standardizer{Mean: []float64{0.1, -0.2, 0.3}, Std: []float64{1, 2, 0.5}}
	if err := serve.AttachArtifacts(snap, cfg, schema, std, dataset.YScaler{Mu: 50, Sigma: 10}, nil); err != nil {
		t.Fatal(err)
	}
	if err := snap.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

func predictJSON(t *testing.T, port int, req *serve.Request) float64 {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("http://127.0.0.1:%d/predict", port), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict status %d", resp.StatusCode)
	}
	var out struct {
		Prediction float64 `json:"prediction"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Prediction
}

func predictWire(t *testing.T, port int, req *serve.Request) float64 {
	t.Helper()
	c, err := wire.Dial(fmt.Sprintf("127.0.0.1:%d", port), wire.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	replies, err := c.Predict([]*serve.Request{req})
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 || replies[0].Status != http.StatusOK {
		t.Fatalf("wire predict: %+v", replies)
	}
	return replies[0].Prediction
}

func TestServePrecisionRejectsUnknown(t *testing.T) {
	bin := buildServe(t)
	out, err := exec.Command(bin, "-model", "x.model", "-precision", "float16").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("err=%v out=%q", err, out)
	}
	if !strings.Contains(string(out), `unknown precision "float16"`) {
		t.Fatalf("output %q", out)
	}
}

func TestServePrecisionFloat32E2E(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "model.snapshot")
	writeServingSnapshot(t, snapPath)
	bin := buildServe(t)

	boot := func(precision string) (httpPort, wirePort int) {
		httpPort, wirePort = freePort(t), freePort(t)
		cmd := exec.Command(bin,
			"-model", snapPath,
			"-precision", precision,
			"-addr", fmt.Sprintf("127.0.0.1:%d", httpPort),
			"-wire-addr", fmt.Sprintf("127.0.0.1:%d", wirePort),
			"-log-level", "error")
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		return httpPort, wirePort
	}
	http64, wire64 := boot("float64")
	http32, wire32 := boot("float32")

	// /statz names the active numeric path; the env2vec_infer_precision
	// gauge carries the same fact for scrapers.
	for _, tc := range []struct {
		port  int
		statz string
		gauge string
	}{
		{http64, `"precision": "float64"`, "env2vec_infer_precision 64"},
		{http32, `"precision": "float32"`, "env2vec_infer_precision 32"},
	} {
		if body := scrape(t, fmt.Sprintf("http://127.0.0.1:%d/statz", tc.port)); !strings.Contains(body, tc.statz) {
			t.Fatalf("port %d /statz missing %s:\n%s", tc.port, tc.statz, body)
		}
		if body := scrape(t, fmt.Sprintf("http://127.0.0.1:%d/metrics", tc.port)); !strings.Contains(body, tc.gauge) {
			t.Fatalf("port %d /metrics missing %s:\n%s", tc.port, tc.gauge, body)
		}
	}

	reqs := []*serve.Request{
		{CF: []float64{0.4, -1.2, 0.9}, Window: []float64{49, 51, 50.5, 52},
			Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "S01"},
		{CF: []float64{-0.3, 0.8, -1.5}, Window: []float64{55, 54, 53, 56},
			Testbed: "tb2", SUT: "fw", Testcase: "scale", Build: "S02"},
		{CF: []float64{1.1, 0.2, 0.7}, Window: []float64{48, 47.5, 49, 48.2},
			Testbed: "never", SUT: "seen", Testcase: "before", Build: "X"}, // <unk> fallback
	}
	for i, req := range reqs {
		j64 := predictJSON(t, http64, req)
		j32 := predictJSON(t, http32, req)
		w64 := predictWire(t, wire64, req)
		w32 := predictWire(t, wire32, req)

		// Same server, different transports: the identical forward pass,
		// modulo JSON float formatting (which Go round-trips exactly).
		if math.Abs(j64-w64) > 1e-9 || math.Abs(j32-w32) > 1e-9 {
			t.Fatalf("req %d: transports disagree: json64=%v wire64=%v json32=%v wire32=%v", i, j64, w64, j32, w32)
		}
		// Across precisions: the documented float32 serving tolerance.
		scale := math.Max(1, math.Abs(j64))
		if d := math.Abs(j32 - j64); d > 1e-3*scale {
			t.Fatalf("req %d: float32 daemon %v vs float64 daemon %v (diff %g)", i, j32, j64, d)
		}
	}
}
