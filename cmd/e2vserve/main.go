// Command e2vserve is the online prediction daemon: it loads an Env2Vec
// snapshot (from a local file or by polling a model-registry endpoint),
// serves per-timestep CPU predictions over HTTP with micro-batching and
// backpressure, and hot-swaps the model when the registry publishes a new
// version.
//
//	e2vserve -model FILE [-addr :9090]
//	    Serve a local snapshot that carries serving artifacts
//	    (written by `env2vec train`).
//
//	e2vserve -registry http://HOST:8080 [-name env2vec] [-poll 10s]
//	    Pull the latest published version and keep polling for updates.
//
// Endpoints: POST /predict, GET /healthz, GET /statz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"env2vec/internal/anomaly"
	"env2vec/internal/modelserver"
	"env2vec/internal/nn"
	"env2vec/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "e2vserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("e2vserve", flag.ExitOnError)
	addr := fs.String("addr", ":9090", "listen address")
	registry := fs.String("registry", "", "model-registry base URL to poll (e.g. http://localhost:8080)")
	name := fs.String("name", "env2vec", "model name in the registry")
	model := fs.String("model", "", "local snapshot file (alternative to -registry)")
	poll := fs.Duration("poll", 10*time.Second, "registry poll interval")
	maxBatch := fs.Int("max-batch", 32, "max requests per forward pass")
	linger := fs.Duration("linger", 2*time.Millisecond, "max time to wait filling a batch")
	queue := fs.Int("queue", 256, "admission queue bound (overflow returns 429)")
	workers := fs.Int("workers", 0, "forward-pass workers (0 = GOMAXPROCS)")
	gamma := fs.Float64("gamma", 0, "enable inline anomaly verdicts with this γ threshold (0 disables)")
	absFilter := fs.Float64("abs-filter", 5, "absolute deviation filter for verdicts (0 disables)")
	minCal := fs.Int("min-cal", 8, "observations per chain before verdicts are emitted")
	_ = fs.Parse(args)
	if (*registry == "") == (*model == "") {
		return errors.New("exactly one of -registry or -model is required")
	}

	cfg := serve.Config{
		MaxBatch:       *maxBatch,
		MaxLinger:      *linger,
		QueueDepth:     *queue,
		Workers:        *workers,
		MinCalibration: *minCal,
	}
	if *gamma > 0 {
		cfg.Detect = &anomaly.Config{Gamma: *gamma, AbsFilter: *absFilter}
	}
	srv := serve.New(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *model != "" {
		snap, err := nn.LoadSnapshotFile(*model)
		if err != nil {
			return err
		}
		b, err := serve.BundleFromSnapshot(*name, 0, snap)
		if err != nil {
			return fmt.Errorf("%s: %w (was it written by `env2vec train`?)", *model, err)
		}
		srv.SetBundle(b)
		fmt.Printf("loaded %s from %s\n", *name, *model)
	} else {
		watcher := &modelserver.Watcher{
			Client:   &modelserver.Client{BaseURL: *registry},
			Name:     *name,
			Interval: *poll,
			OnUpdate: func(snap *nn.Snapshot, ver int) {
				b, err := serve.BundleFromSnapshot(*name, ver, snap)
				if err != nil {
					fmt.Fprintf(os.Stderr, "e2vserve: rejecting %s v%d: %v\n", *name, ver, err)
					return
				}
				srv.SetBundle(b)
				fmt.Printf("serving %s v%d\n", *name, ver)
			},
			OnError: func(err error) {
				fmt.Fprintf(os.Stderr, "e2vserve: registry poll: %v\n", err)
			},
		}
		go watcher.Run(ctx)
		fmt.Printf("polling %s for %s every %s\n", *registry, *name, *poll)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("listening on %s (POST /predict, GET /healthz, GET /statz)\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	// Stop accepting connections, then drain in-flight batches.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	srv.Close()
	fmt.Println("drained; bye")
	return nil
}
