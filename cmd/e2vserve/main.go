// Command e2vserve is the online prediction daemon: it loads an Env2Vec
// snapshot (from a local file or by polling a model-registry endpoint),
// serves per-timestep CPU predictions over HTTP with micro-batching and
// backpressure, and hot-swaps the model when the registry publishes a new
// version.
//
//	e2vserve -model FILE [-addr :9090]
//	    Serve a local snapshot that carries serving artifacts
//	    (written by `env2vec train`).
//
//	e2vserve -registry http://HOST:8080 [-name env2vec] [-poll 10s]
//	    Pull the latest published version and keep polling for updates.
//
//	e2vserve -registry http://HOST:8080 -registry-dir DIR
//	    Same, but mirror the registry into a durable local store: the
//	    daemon warm-starts from DIR after a restart (even with the
//	    primary down) and keeps DIR converged as a replica.
//
// With -wire-addr the daemon additionally serves the length-prefixed
// binary wire protocol (batched predicts and subscribe-mode streaming, see
// docs/serving.md) on a second listener, dispatching into the same
// micro-batcher as the JSON path.
//
// Endpoints: POST /predict, POST /observe (deferred ground truth), GET
// /quality (model-quality report), GET /traces and GET /traces/{id}
// (tail-sampled stage-span traces), GET /healthz, GET /statz, GET
// /metrics (Prometheus text format), and — with -pprof — GET
// /debug/pprof/.
// The model-quality monitor is always on; point -alarmstore at an alarm
// store to have drift alarms delivered there. Diagnostics go to stderr as
// structured (slog) records; see docs/observability.md for metric names,
// trace fields, and the quality/alarm pipeline.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"env2vec/internal/anomaly"
	"env2vec/internal/modelserver"
	"env2vec/internal/nn"
	"env2vec/internal/obs"
	"env2vec/internal/quality"
	"env2vec/internal/serve"
	"env2vec/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "e2vserve:", err)
		os.Exit(1)
	}
}

// registryClient builds the registry client for a poll loop: with
// long-polling on, the HTTP timeout must outlast the server-side park.
func registryClient(baseURL string, longPoll time.Duration) *modelserver.Client {
	c := &modelserver.Client{BaseURL: baseURL}
	if longPoll > 0 {
		c.HTTP = &http.Client{Timeout: longPoll + 30*time.Second}
	}
	return c
}

func run(args []string) error {
	fs := flag.NewFlagSet("e2vserve", flag.ExitOnError)
	addr := fs.String("addr", ":9090", "listen address")
	wireAddr := fs.String("wire-addr", "", "binary wire-protocol listen address (e.g. :9091); empty disables")
	maxBody := fs.Int64("max-body", serve.DefaultMaxBodyBytes, "max accepted HTTP request-body bytes (oversize answers 413)")
	registry := fs.String("registry", "", "model-registry base URL to poll (e.g. http://localhost:8080)")
	registryDir := fs.String("registry-dir", "", "local durable registry mirror: replayed for a warm start, then kept converged with -registry")
	name := fs.String("name", "env2vec", "model name in the registry")
	model := fs.String("model", "", "local snapshot file (alternative to -registry)")
	precisionFlag := fs.String("precision", "float64", "serving forward-pass precision: float64 (tape-exact) or float32 (~2x faster, 1e-4 relative; see docs/performance.md)")
	poll := fs.Duration("poll", 10*time.Second, "registry poll interval (long-poll fallback pacing)")
	longPoll := fs.Duration("long-poll", 30*time.Second, "park registry polls server-side this long (?wait=), so new versions land in O(RTT); 0 = plain polling")
	maxBatch := fs.Int("max-batch", 32, "max requests per forward pass")
	linger := fs.Duration("linger", 2*time.Millisecond, "max time to wait filling a batch")
	queue := fs.Int("queue", 256, "admission queue bound (overflow returns 429)")
	workers := fs.Int("workers", 0, "forward-pass workers (0 = GOMAXPROCS)")
	gamma := fs.Float64("gamma", 0, "enable inline anomaly verdicts with this γ threshold (0 disables)")
	absFilter := fs.Float64("abs-filter", 5, "absolute deviation filter for verdicts (0 disables)")
	minCal := fs.Int("min-cal", 8, "observations per chain before verdicts are emitted")
	qGamma := fs.Float64("quality-gamma", 3, "quality monitor γ: errors beyond γ·σ of the baseline count as exceedances")
	qWindow := fs.Int("quality-window", 64, "quality monitor window of recent errors per environment")
	qMin := fs.Int("quality-min", 16, "observations per environment before drift verdicts fire")
	qExceed := fs.Float64("quality-exceed-rate", 0.5, "fraction of the window beyond γ·σ that raises a drift alarm")
	alarmURL := fs.String("alarmstore", "", "alarm-store base URL drift alarms are pushed to (empty = local only)")
	traceCap := fs.Int("trace-capacity", 1024, "traces retained in the tail-sampled store behind GET /traces")
	traceSample := fs.Float64("trace-sample", 0.1, "head-sampling rate for unremarkable traces (1 keeps all, <0 keeps none)")
	traceSlowMS := fs.Float64("trace-slow-ms", 250, "latency above which a trace is always retained (<0 disables)")
	logLevel := fs.String("log-level", "info", "log level: debug|info|warn|error")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/ handlers")
	_ = fs.Parse(args)
	if *model != "" && (*registry != "" || *registryDir != "") {
		return errors.New("-model is exclusive with -registry/-registry-dir")
	}
	if *model == "" && *registry == "" && *registryDir == "" {
		return errors.New("one of -model, -registry, or -registry-dir is required")
	}
	precision, err := serve.ParsePrecision(*precisionFlag)
	if err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level, "e2vserve")

	// Every bundle — initial load, mirror replay, watcher update — gets the
	// chosen precision applied before it is swapped into the server.
	newBundle := func(ver int, snap *nn.Snapshot) (*serve.Bundle, error) {
		b, err := serve.BundleFromSnapshot(*name, ver, snap)
		if err != nil {
			return nil, err
		}
		if err := b.SetPrecision(precision); err != nil {
			return nil, err
		}
		return b, nil
	}

	reg := obs.NewRegistry()
	cfg := serve.Config{
		MaxBatch:       *maxBatch,
		MaxLinger:      *linger,
		QueueDepth:     *queue,
		Workers:        *workers,
		MinCalibration: *minCal,
		MaxBodyBytes:   *maxBody,
		Trace:          obs.TraceStoreConfig{Capacity: *traceCap, SampleRate: *traceSample, SlowMS: *traceSlowMS},
		Obs:            reg,
		Logger:         obs.NewLogger(os.Stderr, level, "serve"),
		EnablePprof:    *pprofOn,
	}
	if *gamma > 0 {
		cfg.Detect = &anomaly.Config{Gamma: *gamma, AbsFilter: *absFilter}
	}
	// The quality monitor is always on: it only needs ground truth (inline
	// actuals or POST /observe) to produce anything. Alarms leave the
	// process only when -alarmstore names a store.
	cfg.Quality = &quality.Config{
		Gamma: *qGamma, Window: *qWindow, MinSamples: *qMin, ExceedRate: *qExceed,
	}
	if *alarmURL != "" {
		cfg.AlarmSink = quality.HTTPSink{URL: *alarmURL}
	}
	srv := serve.New(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *model != "" {
		snap, err := nn.LoadSnapshotFile(*model)
		if err != nil {
			return err
		}
		b, err := newBundle(0, snap)
		if err != nil {
			return fmt.Errorf("%s: %w (was it written by `env2vec train`?)", *model, err)
		}
		srv.SetBundle(b)
		logger.Info("serving local snapshot", "model", *name, "file", *model, "precision", string(precision))
	} else if *registryDir != "" {
		// Durable mirror mode: replay the local registry for a warm start
		// (serving resumes even if the primary is down), then follow the
		// primary as a replica and hot-reload as versions land.
		local, err := modelserver.OpenRegistry(modelserver.WithDir(*registryDir))
		if err != nil {
			return err
		}
		defer local.Close()
		local.Instrument(reg)
		replicaLog := obs.NewLogger(os.Stderr, level, "replica")
		loadLocal := func() {
			v, err := local.Latest(*name)
			if err != nil {
				return // nothing mirrored yet
			}
			if cur := srv.Bundle(); cur != nil && cur.Version >= v.Number {
				return
			}
			snap, err := nn.DecodeSnapshot(bytes.NewReader(v.Data))
			if err != nil {
				replicaLog.Error("mirrored version undecodable", "model", *name, "version", v.Number, "err", err)
				return
			}
			b, err := newBundle(v.Number, snap)
			if err != nil {
				replicaLog.Error("rejecting mirrored version", "model", *name, "version", v.Number, "err", err)
				return
			}
			srv.SetBundle(b)
		}
		loadLocal()
		if rec := local.RecoveredRecords(); rec > 0 {
			logger.Warn("registry mirror quarantined torn records on replay", "dir", *registryDir, "records", rec)
		}
		if *registry != "" {
			replica := (&modelserver.Replica{
				Client:   registryClient(*registry, *longPoll),
				Registry: local,
				Interval: *poll,
				LongPoll: *longPoll,
				OnSync: func(pulled int) {
					if pulled > 0 {
						loadLocal()
					}
				},
				OnError: func(err error) {
					replicaLog.Warn("replica sync failed", "registry", *registry, "err", err)
				},
			}).Instrument(reg)
			go replica.Run(ctx)
			logger.Info("mirroring registry", "registry", *registry, "dir", *registryDir, "interval", *poll)
		} else {
			logger.Info("serving from local registry mirror", "dir", *registryDir)
		}
	} else {
		watcherLog := obs.NewLogger(os.Stderr, level, "watcher")
		watcher := (&modelserver.Watcher{
			Client:   registryClient(*registry, *longPoll),
			Name:     *name,
			Interval: *poll,
			LongPoll: *longPoll,
			OnUpdate: func(snap *nn.Snapshot, ver int) {
				b, err := newBundle(ver, snap)
				if err != nil {
					watcherLog.Error("rejecting published version", "model", *name, "version", ver, "err", err)
					return
				}
				srv.SetBundle(b)
			},
			OnError: func(err error) {
				watcherLog.Warn("registry poll failed", "registry", *registry, "model", *name, "err", err)
			},
		}).Instrument(reg)
		go watcher.Run(ctx)
		logger.Info("polling registry", "registry", *registry, "model", *name, "interval", *poll)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr,
			"endpoints", "POST /predict, POST /observe, GET /quality, GET /healthz, GET /statz, GET /metrics, GET /traces",
			"alarmstore", *alarmURL, "pprof", *pprofOn)
		errc <- httpSrv.ListenAndServe()
	}()

	// The binary protocol listens beside JSON and dispatches into the same
	// micro-batcher; either listener failing takes the daemon down.
	var wireSrv *wire.Server
	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			srv.Close()
			return fmt.Errorf("wire listener: %w", err)
		}
		wireSrv = wire.NewServer(srv, wire.ServerConfig{
			Obs: reg, Logger: obs.NewLogger(os.Stderr, level, "wire"),
		})
		go func() {
			logger.Info("wire protocol listening", "addr", *wireAddr, "modes", "batch, subscribe")
			if err := wireSrv.Serve(ln); err != nil {
				errc <- fmt.Errorf("wire listener: %w", err)
			}
		}()
	}
	closeWire := func() {
		if wireSrv != nil {
			wireSrv.Close()
		}
	}

	select {
	case err := <-errc:
		closeWire()
		srv.Close()
		return err
	case <-ctx.Done():
	}
	// Stop accepting connections, then drain in-flight batches.
	closeWire()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	srv.Close()
	logger.Info("drained; bye")
	return nil
}
