// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact), plus micro-benchmarks of the library's hot
// paths. The experiment benchmarks run at unit-test scale so the full suite
// completes in minutes; the cmd/kdnbench and cmd/telecombench binaries run
// the same experiments at evaluation scale and are what EXPERIMENTS.md
// records.
package env2vec_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"env2vec"
	"env2vec/internal/anomaly"
	"env2vec/internal/autodiff"
	"env2vec/internal/baselines"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/experiments"
	"env2vec/internal/htm"
	"env2vec/internal/kdn"
	"env2vec/internal/nn"
	"env2vec/internal/serve"
	"env2vec/internal/stats"
	"env2vec/internal/telecom"
	"env2vec/internal/tensor"
)

// sharedLab lazily builds one quick-scale telecom lab reused by every
// telecom benchmark, so the suite doesn't retrain per benchmark.
var (
	labOnce sync.Once
	lab     *experiments.Lab
)

func quickLab() *experiments.Lab {
	labOnce.Do(func() {
		opts := experiments.QuickTelecomOptions()
		opts.Corpus.Chains = 20
		opts.Corpus.FaultExecutions = 4
		lab = experiments.NewLab(opts)
	})
	return lab
}

// ── One benchmark per paper artifact ────────────────────────────────────

func BenchmarkTable3_KDNSplits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table3() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable4_KDNModels(b *testing.B) {
	opts := experiments.QuickTable4Options()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Scores) != 3 {
			b.Fatalf("expected 3 VNFs, got %d", len(res.Scores))
		}
	}
}

func BenchmarkFigure1_PerChainLinreg(b *testing.B) {
	l := quickLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := l.RunFigure1()
		if res.Weights.Cols != len(res.ChainIDs) {
			b.Fatal("heatmap shape wrong")
		}
	}
}

func BenchmarkFigure3_ChainImprovement(b *testing.B) {
	l := quickLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := l.RunFigure34()
		if len(res.ImprovementEnv2Vec) == 0 {
			b.Fatal("no improvements computed")
		}
	}
}

func BenchmarkFigure4_MAECDF(b *testing.B) {
	l := quickLab()
	res := l.RunFigure34()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdf := experiments.Figure4CDF(res)
		if len(cdf["Env2Vec"]) == 0 {
			b.Fatal("no CDF points")
		}
	}
}

func BenchmarkTable5_AnomalyDetection(b *testing.B) {
	l := quickLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := l.RunTable5()
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure6_EmbeddingPCA(b *testing.B) {
	l := quickLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := l.RunFigure6()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkTable6_UnseenEnvironments(b *testing.B) {
	l := quickLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := l.RunTable6()
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable7_CoverageAnalysis(b *testing.B) {
	l := quickLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := l.RunTable7()
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTrainingCost(b *testing.B) {
	// §6: Ridge trains in well under a second per chain.
	l := quickLab()
	chainID := l.Corpus.ChainOrder[0]
	hist := l.Corpus.ChainSeries[chainID]
	var examples []dataset.Example
	for _, s := range hist[:len(hist)-1] {
		examples = append(examples, dataset.WindowExamples(s, 3)...)
	}
	split, err := dataset.SplitExamples(examples, len(examples)*5/6, len(examples)/6, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	dataset.StandardizeSplit(split)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.FitRidgeCV(split.Train, split.Val, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelSize(b *testing.B) {
	// §6: the serialized model stays below 10 MB.
	tr := quickLab().Pooled()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		size, err := tr.Model.SizeBytes()
		if err != nil {
			b.Fatal(err)
		}
		if size > 10*1024*1024 {
			b.Fatalf("model size %d exceeds the 10MB claim", size)
		}
	}
}

func BenchmarkAblation_PredictionHeads(b *testing.B) {
	// §3.2/§6 design-choice ablation: Hadamard vs bilinear vs MLP head vs
	// attention, on the pooled KDN task.
	opts := experiments.QuickTable4Options()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHeadAblation(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Variants) != 4 {
			b.Fatalf("expected 4 variants")
		}
	}
}

func BenchmarkAblation_EMHoldout(b *testing.B) {
	// §6 hold-out analysis: inference-time EM feature importance.
	l := quickLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := l.RunEMHoldout()
		if len(rows) != envmeta.NumFeatures {
			b.Fatalf("expected one row per EM feature")
		}
	}
}

// ── Library micro-benchmarks ─────────────────────────────────────────────

func benchModelAndBatch(b *testing.B, batchSize int) (*env2vec.Trained, *nn.Batch) {
	b.Helper()
	cfg := telecom.SmallConfig()
	corpus := telecom.Generate(cfg)
	tcfg := env2vec.TrainerDefaults(telecom.NumFeatures)
	tcfg.Train.Epochs = 2
	tr, err := env2vec.Train(corpus.Dataset, nil, tcfg)
	if err != nil {
		b.Fatal(err)
	}
	s := corpus.Dataset.Series[0]
	exs := dataset.WindowExamples(s, tcfg.Model.Window)
	if len(exs) > batchSize {
		exs = exs[:batchSize]
	}
	batch := dataset.ToBatch(exs, tr.Schema)
	tr.Standardizer.Apply(batch.X)
	return tr, batch
}

func BenchmarkEnv2VecPredictBatch32(b *testing.B) {
	tr, batch := benchModelAndBatch(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Model.Predict(batch)
	}
}

func BenchmarkEnv2VecTrainStep(b *testing.B) {
	tr, batch := benchModelAndBatch(b, 32)
	opt := nn.NewAdam(0.001)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tape := autodiff.NewTape()
		loss := tr.Model.Loss(tape, batch, true, rng)
		tape.Backward(loss)
		opt.Step(tr.Model.Params())
	}
}

func BenchmarkGRUForwardWindow(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := nn.NewGRU("g", 1, 32, rng)
	window := tensor.New(32, 4)
	window.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tape := autodiff.NewTape()
		_ = g.ForwardWindow(tape, tape.Constant(window))
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(128, 128)
	y := tensor.New(128, 128)
	x.RandNormal(rng, 1)
	y.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMul(x, y)
	}
}

func BenchmarkRidgeFit86Features(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(900, kdn.NumFeatures)
	x.RandNormal(rng, 1)
	y := tensor.New(900, 1)
	y.RandNormal(rng, 1)
	batch := &nn.Batch{X: x, Y: y}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := baselines.NewRidge(1.0, false)
		if err := r.Fit(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHTMStep(b *testing.B) {
	d := htm.New(htm.Config{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step(50 + rng.NormFloat64()*5)
	}
}

func BenchmarkPCAEmbeddings(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.New(200, 40)
	m.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.FitPCA(m, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnomalyFlag(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10_000
	pred := make([]float64, n)
	actual := make([]float64, n)
	for i := range pred {
		pred[i] = rng.NormFloat64()
		actual[i] = rng.NormFloat64()
	}
	em := anomaly.FitErrorModel(pred[:n/2], actual[:n/2])
	cfg := anomaly.Config{Gamma: 2, AbsFilter: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = anomaly.Flag(pred, actual, em, cfg)
	}
}

func BenchmarkTelecomGenerate(b *testing.B) {
	cfg := telecom.SmallConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = telecom.Generate(cfg)
	}
}

func BenchmarkKDNGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = kdn.Generate(kdn.Snort, int64(i))
	}
}

// benchServer stands up a prediction server over a quick-trained model and
// returns it with one raw (unstandardized) request to replay.
func benchServer(b *testing.B, maxBatch int) (*serve.Server, *serve.Request) {
	b.Helper()
	cfg := telecom.SmallConfig()
	corpus := telecom.Generate(cfg)
	tcfg := env2vec.TrainerDefaults(telecom.NumFeatures)
	tcfg.Train.Epochs = 2
	tr, err := env2vec.Train(corpus.Dataset, nil, tcfg)
	if err != nil {
		b.Fatal(err)
	}
	srv := serve.New(serve.Config{MaxBatch: maxBatch, MaxLinger: time.Millisecond, QueueDepth: 4096})
	srv.SetBundle(&serve.Bundle{
		Name: "bench", Version: 1,
		Model: tr.Model, Schema: tr.Schema, Std: tr.Standardizer, YScale: tr.YScale,
	})
	b.Cleanup(srv.Close)
	ex := dataset.WindowExamples(corpus.Dataset.Series[0], tcfg.Model.Window)[0]
	req := &serve.Request{
		CF: ex.CF, Window: ex.Window,
		Testbed: ex.Env.Testbed, SUT: ex.Env.SUT,
		Testcase: ex.Env.Testcase, Build: ex.Env.Build,
	}
	return srv, req
}

func BenchmarkServeSingle(b *testing.B) {
	// One request per forward pass: the no-batching floor.
	srv, req := benchServer(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, code, err := srv.Do(req); err != nil || code != 200 {
			b.Fatalf("%d %v", code, err)
		}
	}
}

func BenchmarkServeBatched(b *testing.B) {
	// Concurrent callers sharing forward passes via micro-batching.
	srv, req := benchServer(b, 32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, code, err := srv.Do(req); err != nil || code != 200 {
				b.Fatalf("%d %v", code, err)
			}
		}
	})
}

func BenchmarkSchemaEncode(b *testing.B) {
	schema := envmeta.NewSchema()
	env := envmeta.Environment{Testbed: "tb1", SUT: "db", Testcase: "load", Build: "S01"}
	schema.Observe(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = schema.Encode(env)
	}
}
