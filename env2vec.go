// Package env2vec is the public API of this repository: a from-scratch Go
// implementation of "Env2Vec: Accelerating VNF Testing with Deep Learning"
// (Piao, Nicholson, Lugones — EuroSys 2020).
//
// The facade re-exports the pieces a downstream user needs to train the
// single generic Env2Vec model, detect performance anomalies in new
// software builds, and reuse environment embeddings for previously unseen
// environments:
//
//	corpus := env2vec.GenerateTelecomCorpus(env2vec.TelecomDefaults())
//	trained, _ := env2vec.Train(corpus.Dataset, nil, env2vec.TrainerDefaults(env2vec.TelecomFeatureCount))
//	detector := env2vec.NewDetector(trained, env2vec.DetectConfig{Gamma: 2, AbsFilter: 5})
//	alarms := detector.ProcessExecution("env2vec", newBuildSeries)
//
// The heavy lifting lives in the internal packages (see DESIGN.md for the
// full inventory); this package keeps the surface small and stable.
package env2vec

import (
	"env2vec/internal/anomaly"
	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/kdn"
	"env2vec/internal/nn"
	"env2vec/internal/pipeline"
	"env2vec/internal/telecom"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Series is one test execution's contextual time series.
	Series = dataset.Series
	// Dataset is a collection of series sharing a feature schema.
	Dataset = dataset.Dataset
	// Example is one supervised window example.
	Example = dataset.Example
	// Environment is the <Testbed, SUT, Testcase, Build> tuple.
	Environment = envmeta.Environment
	// Schema encodes environments into embedding-table ids.
	Schema = envmeta.Schema
	// Model is the Env2Vec network.
	Model = core.Model
	// ModelConfig sizes the Env2Vec network.
	ModelConfig = core.Config
	// TrainerConfig controls the training pipeline.
	TrainerConfig = pipeline.TrainerConfig
	// Trained bundles the artifacts of one training run.
	Trained = pipeline.TrainResult
	// Detector is the prediction + anomaly-detection pipeline.
	Detector = pipeline.Workflow
	// DetectConfig holds γ and the absolute false-alarm filter.
	DetectConfig = anomaly.Config
	// Alarm is one reported problem interval.
	Alarm = anomaly.Alarm
	// TelecomConfig sizes the synthetic telecom corpus.
	TelecomConfig = telecom.Config
	// TelecomCorpus is the generated corpus plus evaluation bookkeeping.
	TelecomCorpus = telecom.Corpus
	// Snapshot is a serializable set of model weights.
	Snapshot = nn.Snapshot
)

// TelecomFeatureCount is the contextual-feature dimensionality of the
// synthetic telecom corpus.
var TelecomFeatureCount = telecom.NumFeatures

// KDNFeatureCount is the feature dimensionality of the KDN benchmark
// stand-ins (86, as in the public datasets).
const KDNFeatureCount = kdn.NumFeatures

// TelecomDefaults returns the evaluation-scale telecom corpus configuration
// (125 build chains, 11 fault executions).
func TelecomDefaults() TelecomConfig { return telecom.DefaultConfig() }

// GenerateTelecomCorpus synthesizes the carrier-grade testing corpus of
// §4.2 (a documented substitution for the proprietary dataset).
func GenerateTelecomCorpus(cfg TelecomConfig) *TelecomCorpus { return telecom.Generate(cfg) }

// GenerateKDN synthesizes the three KDN benchmark stand-ins (Snort,
// Firewall, Switch) with the published sizes and CPU moments.
func GenerateKDN(seed int64) *Dataset { return kdn.GenerateAll(seed) }

// TrainerDefaults returns a workable training configuration for
// featureDim contextual features.
func TrainerDefaults(featureDim int) TrainerConfig { return pipeline.DefaultTrainerConfig(featureDim) }

// Train fits the single generic Env2Vec model on every series of ds not in
// exclude (executions with confirmed problems are masked, per §3 step 2).
func Train(ds *Dataset, exclude map[*Series]bool, cfg TrainerConfig) (*Trained, error) {
	return pipeline.Train(ds, exclude, cfg)
}

// NewDetector assembles the prediction pipeline from training artifacts.
func NewDetector(tr *Trained, detect DetectConfig) *Detector {
	return pipeline.NewWorkflow(tr, detect)
}

// WindowExamples slides an RU-history window over a series.
func WindowExamples(s *Series, window int) []Example { return dataset.WindowExamples(s, window) }
